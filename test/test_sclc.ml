(* Tests for the line counter behind Fig. 9. *)

module Sclc = Resilix_sclc.Sclc

let count src =
  let c = Sclc.count_string src in
  (c.Sclc.code, c.Sclc.recovery)

let test_blank_and_comments () =
  let src = "\n\n(* a comment *)\n   \nlet x = 1\n(* multi\n   line\n   comment *)\nlet y = 2\n" in
  Alcotest.(check (pair int int)) "only code lines counted" (2, 0) (count src)

let test_nested_comments () =
  let src = "(* outer (* inner *) still out *)\nlet z = 3\n" in
  Alcotest.(check (pair int int)) "nested comment ignored" (1, 0) (count src)

let test_code_and_comment_same_line () =
  let src = "let a = 1 (* trailing *)\n(* leading *) let b = 2\n" in
  Alcotest.(check (pair int int)) "mixed lines count as code" (2, 0) (count src)

let test_string_literals_not_comments () =
  let src = "let s = \"(* not a comment *)\"\nlet t = 1\n" in
  Alcotest.(check (pair int int)) "comment-looking strings are code" (2, 0) (count src)

let test_recovery_line_marker () =
  let src = "let plain = 1\nlet marked = 2 (*@recovery*)\n" in
  Alcotest.(check (pair int int)) "line marker counts one line" (2, 1) (count src)

let test_recovery_region () =
  let src =
    "let before = 0\n(*@recovery-begin*)\nlet a = 1\nlet b = 2\n(*@recovery-end*)\nlet after = 3\n"
  in
  Alcotest.(check (pair int int)) "region counts its code lines" (4, 2) (count src)

let test_marker_lines_not_code () =
  let src = "(*@recovery-begin*)\n(*@recovery-end*)\n" in
  Alcotest.(check (pair int int)) "bare markers are comments" (0, 0) (count src)

let test_find_repo_root () =
  match Sclc.find_repo_root () with
  | Some root -> Alcotest.(check bool) "dune-project present" true
      (Sys.file_exists (Filename.concat root "dune-project"))
  | None -> Alcotest.fail "repo root not found"

let test_fig9_totals_sane () =
  let rows = Resilix_experiments.Fig9.run () in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Resilix_experiments.Fig9.component ^ " counted")
        true
        (r.Resilix_experiments.Fig9.total > 0);
      Alcotest.(check bool)
        (r.Resilix_experiments.Fig9.component ^ " recovery <= total")
        true
        (r.Resilix_experiments.Fig9.recovery <= r.Resilix_experiments.Fig9.total))
    rows;
  (* The paper's headline: PM and microkernel need zero recovery code. *)
  List.iter
    (fun name ->
      let row =
        List.find (fun r -> r.Resilix_experiments.Fig9.component = name) rows
      in
      Alcotest.(check int) (name ^ " recovery LoC") 0 row.Resilix_experiments.Fig9.recovery)
    [ "Process manager"; "Microkernel"; "RAM disk" ]

let tests =
  [
    Alcotest.test_case "blank lines and comments skipped" `Quick test_blank_and_comments;
    Alcotest.test_case "nested comments" `Quick test_nested_comments;
    Alcotest.test_case "code and comment on one line" `Quick test_code_and_comment_same_line;
    Alcotest.test_case "strings are not comments" `Quick test_string_literals_not_comments;
    Alcotest.test_case "recovery line marker" `Quick test_recovery_line_marker;
    Alcotest.test_case "recovery region" `Quick test_recovery_region;
    Alcotest.test_case "bare markers are not code" `Quick test_marker_lines_not_code;
    Alcotest.test_case "repo root discovery" `Quick test_find_repo_root;
    Alcotest.test_case "fig9 component accounting" `Quick test_fig9_totals_sane;
  ]
