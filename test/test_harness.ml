(* Tests for lib/harness and the determinism contract it rests on:
   same-seed boots replay identically, the campaign runner preserves
   trial order and propagates failures, and the experiment sweeps are
   byte-identical whether they run on one domain or several. *)

module System = Resilix_system.System
module Engine = Resilix_sim.Engine
module Trace = Resilix_sim.Trace
module Time = Resilix_sim.Time
module Metrics = Resilix_obs.Metrics
module Trial = Resilix_harness.Trial
module Campaign = Resilix_harness.Campaign
module E = Resilix_experiments

let mb = 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Same seed, same machine                                             *)
(* ------------------------------------------------------------------ *)

(* Boot a full machine, crash the Ethernet driver once, and let the
   reincarnation server recover it — enough activity to touch the
   kernel, RS, DS, INET and the driver. *)
let boot_and_exercise seed =
  let opts = { System.default_opts with System.seed } in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_rtl8139 () ];
  (match System.kill_service_once t ~target:"eth.rtl8139" with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("kill failed: " ^ Resilix_proto.Errno.to_string e));
  System.run ~until:(Time.msec 1500) t;
  t

let test_same_seed_same_run () =
  let a = boot_and_exercise 42 and b = boot_and_exercise 42 in
  let ev t = Trace.events t.System.trace in
  Alcotest.(check int)
    "same number of trace events"
    (List.length (ev a))
    (List.length (ev b));
  (* Event payloads are pure data, so the whole streams must be
     structurally equal — times, levels, subsystems and operands. *)
  Alcotest.(check bool) "identical trace streams" true (ev a = ev b);
  let snap t = Metrics.snapshot ~at:(Engine.now t.System.engine) t.System.metrics in
  Alcotest.(check bool) "identical metric snapshots" true (snap a = snap b);
  Alcotest.(check bool) "identical observability dumps" true
    (System.obs_lines ~label:"det" a = System.obs_lines ~label:"det" b);
  (* Guard against the comparison being vacuous: the run really did
     produce events, activity and a completed recovery. *)
  Alcotest.(check bool) "trace is non-empty" true (ev a <> []);
  Alcotest.(check bool) "a restart was recorded" true
    (List.exists
       (fun e ->
         match e.Trace.payload with
         | Resilix_obs.Event.Restart { component; _ } -> component = "eth.rtl8139"
         | _ -> false)
       (ev a));
  Alcotest.(check bool) "counters are non-trivial" true
    (List.exists (fun (_, v) -> v > 0) (snap a).Metrics.counters)

(* ------------------------------------------------------------------ *)
(* Campaign runner semantics                                           *)
(* ------------------------------------------------------------------ *)

let test_campaign_preserves_order () =
  let trials =
    List.init 17 (fun i ->
        Trial.make ~name:(Printf.sprintf "t%d" i) ~seed:i (fun () ->
            (* Skew the work so late trials tend to finish first under
               parallel execution; order must still be input order. *)
            let spin = ref 0 in
            for _ = 1 to (17 - i) * 10_000 do
              incr spin
            done;
            ignore !spin;
            i * i))
  in
  let expect = List.init 17 (fun i -> i * i) in
  Alcotest.(check (list int))
    "jobs=1 in input order" expect
    Campaign.(values (run ~jobs:1 trials));
  Alcotest.(check (list int))
    "jobs=4 in input order" expect
    Campaign.(values (run ~jobs:4 trials));
  Alcotest.(check (list int))
    "jobs beyond trial count is clamped" expect
    Campaign.(values (run ~jobs:64 trials));
  let r = Campaign.run ~jobs:3 trials in
  Alcotest.(check int) "no failures reported" 0 (List.length r.Campaign.failures);
  Alcotest.(check (list (pair string int)))
    "outcomes pair up with trial names in input order"
    (List.init 17 (fun i -> (Printf.sprintf "t%d" i, i * i)))
    (List.map2
       (fun t o -> (t.Resilix_harness.Trial.name, Result.get_ok o))
       trials r.Campaign.outcomes)

let test_campaign_collects_every_failure () =
  let trials =
    List.init 8 (fun i ->
        Trial.make ~name:(Printf.sprintf "t%d" i) ~seed:i (fun () ->
            if i = 5 then failwith "five";
            if i = 2 then failwith "two";
            i))
  in
  List.iter
    (fun jobs ->
      match Campaign.(values (run ~jobs trials)) with
      | (_ : int list) -> Alcotest.failf "jobs=%d: expected Partial" jobs
      | exception Campaign.Partial failures ->
          Alcotest.(check (list (pair int string)))
            (Printf.sprintf "jobs=%d reports every failed trial, lowest index first" jobs)
            [ (2, "t2"); (5, "t5") ]
            (List.map (fun f -> (f.Campaign.f_index, f.Campaign.f_name)) failures);
          List.iter
            (fun f ->
              Alcotest.(check string)
                "the original exception is preserved"
                (if f.Campaign.f_index = 2 then {|Failure("two")|} else {|Failure("five")|})
                (Printexc.to_string f.Campaign.f_error))
            failures;
          let summary = Campaign.failures_summary failures in
          List.iter
            (fun needle ->
              let found =
                let n = String.length needle and l = String.length summary in
                let rec go i = i + n <= l && (String.sub summary i n = needle || go (i + 1)) in
                go 0
              in
              Alcotest.(check bool)
                (Printf.sprintf "summary mentions %S" needle)
                true found)
            [ "2 trial(s) failed"; "t2"; "t5"; "two"; "five" ])
    [ 1; 4 ];
  (* The run_result record is the non-raising face of the same
     contract: every outcome present, failures listed alongside. *)
  (let r = Campaign.run ~jobs:4 trials in
   Alcotest.(check (list int)) "run reports the same failures" [ 2; 5 ]
     (List.map (fun f -> f.Campaign.f_index) r.Campaign.failures);
   Alcotest.(check int) "every outcome is still present" 8
     (List.length r.Campaign.outcomes);
   Alcotest.(check (list int))
     "successful outcomes are kept despite the failures"
     [ 0; 1; 3; 4; 6; 7 ]
     (List.filter_map Result.to_option r.Campaign.outcomes));
  Alcotest.check_raises "jobs < 1 rejected" (Invalid_argument "Campaign.run: jobs must be >= 1")
    (fun () -> ignore (Campaign.run ~jobs:0 trials))

(* ------------------------------------------------------------------ *)
(* Progress observer                                                   *)
(* ------------------------------------------------------------------ *)

let test_campaign_progress_events () =
  let n = 9 in
  let trials =
    List.init n (fun i -> Trial.make ~name:(Printf.sprintf "t%d" i) ~seed:i (fun () -> i))
  in
  (* jobs=1: events arrive strictly in trial order with an exact
     completed counter. *)
  let seen = ref [] in
  let got = Campaign.(values (run ~jobs:1 ~on_progress:(fun p -> seen := p :: !seen) trials)) in
  Alcotest.(check (list int)) "results unaffected by the observer" (List.init n Fun.id) got;
  let events = List.rev !seen in
  Alcotest.(check int) "one event per trial" n (List.length events);
  List.iteri
    (fun k p ->
      Alcotest.(check int) "sequential events follow trial order" k p.Campaign.p_index;
      Alcotest.(check string) "event names the trial" (Printf.sprintf "t%d" k) p.Campaign.p_name;
      Alcotest.(check int) "completed counts up" (k + 1) p.Campaign.p_completed;
      Alcotest.(check int) "total is the campaign size" n p.Campaign.p_total;
      Alcotest.(check bool) "trial succeeded" false p.Campaign.p_failed;
      Alcotest.(check bool) "elapsed is non-negative" true (p.Campaign.p_elapsed_s >= 0.))
    events;
  (* jobs=4: completion order is scheduling-dependent, but every trial
     reports exactly once and the completed counters are a permutation
     of 1..n. *)
  let seen = ref [] in
  let got = Campaign.(values (run ~jobs:4 ~on_progress:(fun p -> seen := p :: !seen) trials)) in
  Alcotest.(check (list int)) "parallel results still in input order" (List.init n Fun.id) got;
  let events = !seen in
  Alcotest.(check int) "one event per trial under jobs=4" n (List.length events);
  let sorted_indices = List.sort compare (List.map (fun p -> p.Campaign.p_index) events) in
  Alcotest.(check (list int)) "every trial index reported once" (List.init n Fun.id)
    sorted_indices;
  let sorted_completed = List.sort compare (List.map (fun p -> p.Campaign.p_completed) events) in
  Alcotest.(check (list int))
    "completed counters are a permutation of 1..n"
    (List.init n (fun i -> i + 1))
    sorted_completed;
  (* Failed trials still emit progress, flagged as failures. *)
  let failing =
    List.init 4 (fun i ->
        Trial.make ~name:(Printf.sprintf "f%d" i) ~seed:i (fun () ->
            if i = 1 then failwith "boom";
            i))
  in
  let seen = ref [] in
  (match Campaign.(values (run ~jobs:1 ~on_progress:(fun p -> seen := p :: !seen) failing)) with
  | _ -> Alcotest.fail "expected Partial"
  | exception Campaign.Partial _ -> ());
  Alcotest.(check int) "failures still emit a progress event" 4 (List.length !seen);
  let by_index = List.sort (fun a b -> compare a.Campaign.p_index b.Campaign.p_index) !seen in
  Alcotest.(check (list bool))
    "exactly the failing trial is flagged"
    [ false; true; false; false ]
    (List.map (fun p -> p.Campaign.p_failed) by_index)

(* ------------------------------------------------------------------ *)
(* Parallel sweeps are byte-identical to sequential ones               *)
(* ------------------------------------------------------------------ *)

let collect_obs run =
  let buf = Buffer.create 4096 in
  let rows = run (fun line -> Buffer.add_string buf line; Buffer.add_char buf '\n') in
  (rows, Buffer.contents buf)

let test_fig7_jobs_invariant () =
  (* The acceptance criterion for the progress observer: enabling it
     must leave the stdout/JSONL path byte-identical for every job
     count — the observer only ever sees the stderr-side sink. *)
  let sweep jobs =
    collect_obs (fun sink ->
        E.Fig7.run ~jobs
          ~on_progress:(fun (_ : Campaign.progress) -> ())
          ~size:(2 * mb) ~intervals:[ 1 ] ~seed:42 ~obs:sink ())
  in
  let rows1, obs1 = sweep 1 and rows2, obs2 = sweep 2 and rows4, obs4 = sweep 4 in
  Alcotest.(check int) "baseline + one interval" 2 (List.length rows1);
  Alcotest.(check bool) "fig7 rows identical for jobs=1 and jobs=2" true (rows1 = rows2);
  Alcotest.(check bool) "fig7 rows identical for jobs=1 and jobs=4" true (rows1 = rows4);
  Alcotest.(check string) "fig7 observability byte-identical (jobs=2)" obs1 obs2;
  Alcotest.(check string) "fig7 observability byte-identical (jobs=4)" obs1 obs4;
  Alcotest.(check bool) "sweep passes its own integrity check" true (E.Fig7.ok rows1)

let test_sec72_jobs_invariant () =
  let campaign jobs =
    collect_obs (fun sink ->
        E.Sec72.run ~jobs ~faults:200 ~shard_size:50 ~seed:42 ~obs:sink ())
  in
  let o1, obs1 = campaign 1 and o4, obs4 = campaign 4 in
  Alcotest.(check bool) "sec7_2 outcome identical for jobs=1 and jobs=4" true (o1 = o4);
  Alcotest.(check string) "sec7_2 observability byte-identical" obs1 obs4;
  Alcotest.(check int) "every shard injected its share" 200 o1.E.Sec72.injected;
  Alcotest.(check bool) "crash-class split accounts for every crash" true (E.Sec72.ok o1)

let tests =
  [
    Alcotest.test_case "same seed, same run" `Quick test_same_seed_same_run;
    Alcotest.test_case "campaign preserves trial order" `Quick test_campaign_preserves_order;
    Alcotest.test_case "campaign collects every failure" `Quick
      test_campaign_collects_every_failure;
    Alcotest.test_case "campaign progress observer" `Quick test_campaign_progress_events;
    Alcotest.test_case "fig7 sweep is jobs-invariant" `Quick test_fig7_jobs_invariant;
    Alcotest.test_case "sec7_2 campaign is jobs-invariant" `Quick test_sec72_jobs_invariant;
  ]
