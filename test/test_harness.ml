(* Tests for lib/harness and the determinism contract it rests on:
   same-seed boots replay identically, the campaign runner preserves
   trial order and propagates failures, and the experiment sweeps are
   byte-identical whether they run on one domain or several. *)

module System = Resilix_system.System
module Engine = Resilix_sim.Engine
module Trace = Resilix_sim.Trace
module Time = Resilix_sim.Time
module Metrics = Resilix_obs.Metrics
module Trial = Resilix_harness.Trial
module Campaign = Resilix_harness.Campaign
module E = Resilix_experiments

let mb = 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Same seed, same machine                                             *)
(* ------------------------------------------------------------------ *)

(* Boot a full machine, crash the Ethernet driver once, and let the
   reincarnation server recover it — enough activity to touch the
   kernel, RS, DS, INET and the driver. *)
let boot_and_exercise seed =
  let opts = { System.default_opts with System.seed } in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_rtl8139 () ];
  (match System.kill_service_once t ~target:"eth.rtl8139" with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("kill failed: " ^ Resilix_proto.Errno.to_string e));
  System.run ~until:(Time.msec 1500) t;
  t

let test_same_seed_same_run () =
  let a = boot_and_exercise 42 and b = boot_and_exercise 42 in
  let ev t = Trace.events t.System.trace in
  Alcotest.(check int)
    "same number of trace events"
    (List.length (ev a))
    (List.length (ev b));
  (* Event payloads are pure data, so the whole streams must be
     structurally equal — times, levels, subsystems and operands. *)
  Alcotest.(check bool) "identical trace streams" true (ev a = ev b);
  let snap t = Metrics.snapshot ~at:(Engine.now t.System.engine) t.System.metrics in
  Alcotest.(check bool) "identical metric snapshots" true (snap a = snap b);
  Alcotest.(check bool) "identical observability dumps" true
    (System.obs_lines ~label:"det" a = System.obs_lines ~label:"det" b);
  (* Guard against the comparison being vacuous: the run really did
     produce events, activity and a completed recovery. *)
  Alcotest.(check bool) "trace is non-empty" true (ev a <> []);
  Alcotest.(check bool) "a restart was recorded" true
    (List.exists
       (fun e ->
         match e.Trace.payload with
         | Resilix_obs.Event.Restart { component; _ } -> component = "eth.rtl8139"
         | _ -> false)
       (ev a));
  Alcotest.(check bool) "counters are non-trivial" true
    (List.exists (fun (_, v) -> v > 0) (snap a).Metrics.counters)

(* ------------------------------------------------------------------ *)
(* Campaign runner semantics                                           *)
(* ------------------------------------------------------------------ *)

let test_campaign_preserves_order () =
  let trials =
    List.init 17 (fun i ->
        Trial.make ~name:(Printf.sprintf "t%d" i) ~seed:i (fun () ->
            (* Skew the work so late trials tend to finish first under
               parallel execution; order must still be input order. *)
            let spin = ref 0 in
            for _ = 1 to (17 - i) * 10_000 do
              incr spin
            done;
            ignore !spin;
            i * i))
  in
  let expect = List.init 17 (fun i -> i * i) in
  Alcotest.(check (list int)) "jobs=1 in input order" expect (Campaign.run ~jobs:1 trials);
  Alcotest.(check (list int)) "jobs=4 in input order" expect (Campaign.run ~jobs:4 trials);
  Alcotest.(check (list int))
    "jobs beyond trial count is clamped" expect
    (Campaign.run ~jobs:64 trials);
  let named = Campaign.run_named ~jobs:3 trials in
  Alcotest.(check (list (pair string int)))
    "run_named pairs names with results"
    (List.init 17 (fun i -> (Printf.sprintf "t%d" i, i * i)))
    named

let test_campaign_reraises_lowest_index () =
  let trials =
    List.init 8 (fun i ->
        Trial.make ~name:(Printf.sprintf "t%d" i) ~seed:i (fun () ->
            if i = 5 then failwith "five";
            if i = 2 then failwith "two";
            i))
  in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d re-raises the lowest failing trial" jobs)
        (Failure "two")
        (fun () -> ignore (Campaign.run ~jobs trials)))
    [ 1; 4 ];
  Alcotest.check_raises "jobs < 1 rejected" (Invalid_argument "Campaign.run: jobs must be >= 1")
    (fun () -> ignore (Campaign.run ~jobs:0 trials))

(* ------------------------------------------------------------------ *)
(* Parallel sweeps are byte-identical to sequential ones               *)
(* ------------------------------------------------------------------ *)

let collect_obs run =
  let buf = Buffer.create 4096 in
  let rows = run (fun line -> Buffer.add_string buf line; Buffer.add_char buf '\n') in
  (rows, Buffer.contents buf)

let test_fig7_jobs_invariant () =
  let sweep jobs =
    collect_obs (fun sink ->
        E.Fig7.run ~jobs ~size:(2 * mb) ~intervals:[ 1 ] ~seed:42 ~obs:sink ())
  in
  let rows1, obs1 = sweep 1 and rows4, obs4 = sweep 4 in
  Alcotest.(check int) "baseline + one interval" 2 (List.length rows1);
  Alcotest.(check bool) "fig7 rows identical for jobs=1 and jobs=4" true (rows1 = rows4);
  Alcotest.(check string) "fig7 observability byte-identical" obs1 obs4;
  Alcotest.(check bool) "sweep passes its own integrity check" true (E.Fig7.ok rows1)

let test_sec72_jobs_invariant () =
  let campaign jobs =
    collect_obs (fun sink ->
        E.Sec72.run ~jobs ~faults:200 ~shard_size:50 ~seed:42 ~obs:sink ())
  in
  let o1, obs1 = campaign 1 and o4, obs4 = campaign 4 in
  Alcotest.(check bool) "sec7_2 outcome identical for jobs=1 and jobs=4" true (o1 = o4);
  Alcotest.(check string) "sec7_2 observability byte-identical" obs1 obs4;
  Alcotest.(check int) "every shard injected its share" 200 o1.E.Sec72.injected;
  Alcotest.(check bool) "crash-class split accounts for every crash" true (E.Sec72.ok o1)

let tests =
  [
    Alcotest.test_case "same seed, same run" `Quick test_same_seed_same_run;
    Alcotest.test_case "campaign preserves trial order" `Quick test_campaign_preserves_order;
    Alcotest.test_case "campaign re-raises lowest failing trial" `Quick
      test_campaign_reraises_lowest_index;
    Alcotest.test_case "fig7 sweep is jobs-invariant" `Quick test_fig7_jobs_invariant;
    Alcotest.test_case "sec7_2 campaign is jobs-invariant" `Quick test_sec72_jobs_invariant;
  ]
