(* Software fault injection mechanics (Sec. 7.2): mutate the running
   DP8390 driver's code image while UDP traffic flows, and check that
   the crash is detected and transparently recovered. *)

module System = Resilix_system.System
module Hwmap = Resilix_system.Hwmap
module Engine = Resilix_sim.Engine
module Api = Resilix_kernel.Sysif.Api
module Message = Resilix_proto.Message
module Status = Resilix_proto.Status
module Reincarnation = Resilix_core.Reincarnation
module Fault = Resilix_vm.Fault
module Sockets = Resilix_apps.Sockets
module Dp8390 = Resilix_drivers.Netdriver_dp8390

let boot_dp () =
  let opts =
    { System.default_opts with System.disk_mb = 8; inet_driver = "eth.dp8390" }
  in
  let t = System.boot ~opts () in
  System.start_services t
    [ System.spec_dp8390 ~heartbeat_period:200_000 () ];
  t

(* A UDP sink counting datagrams from the peer. *)
let start_udp_sink t counter =
  ignore
    (System.spawn_app t ~name:"udp-sink" (fun () ->
         match Sockets.socket Message.Udp with
         | Error _ -> ()
         | Ok sock -> (
             match Sockets.listen sock ~port:9 with
             | Error _ -> ()
             | Ok () ->
                 let rec pump () =
                   match Sockets.recvfrom sock ~len:2048 with
                   | Ok _ ->
                       incr counter;
                       pump ()
                   | Error _ -> pump ()
                 in
                 pump ())))

let test_udp_echo () =
  let t = boot_dp () in
  let replies = ref 0 and done_flag = ref false in
  ignore
    (System.spawn_app t ~name:"udp-echo-client" (fun () ->
         match Sockets.socket Message.Udp with
         | Error _ -> done_flag := true
         | Ok sock ->
             ignore (Sockets.listen sock ~port:5000);
             for i = 1 to 5 do
               let payload = Bytes.of_string (Printf.sprintf "ping %d" i) in
               ignore (Sockets.sendto sock ~addr:Hwmap.dp_peer_ip ~port:7 payload);
               match Sockets.recvfrom sock ~len:256 with
               | Ok (echoed, _, _) when Bytes.equal echoed payload -> incr replies
               | Ok _ | Error _ -> ()
             done;
             done_flag := true));
  let finished = System.run_until t ~timeout:60_000_000 (fun () -> !done_flag) in
  Alcotest.(check bool) "echo client finished" true finished;
  Alcotest.(check int) "all pings echoed" 5 !replies

let test_inject_until_crash_and_recover () =
  let t = boot_dp () in
  let received = ref 0 in
  start_udp_sink t received;
  let stop_stream =
    Resilix_net.Peer.start_udp_stream t.System.dp_peer ~dst_ip:Hwmap.local_ip
      ~dst_mac:Hwmap.dp8390_mac ~dst_port:9 ~src_port:7777 ~payload_len:512 ~interval:10_000
  in
  (* Let traffic flow, then inject one fault every 100 ms until the
     driver crashes. *)
  System.run t ~until:(Engine.now t.System.engine + 1_000_000);
  let before_crash = !received in
  Alcotest.(check bool) "traffic flowing before injection" true (before_crash > 10);
  let image = Dp8390.image_info ~base:Hwmap.dp8390_base in
  let injected = ref 0 in
  let rec inject_round () =
    if Reincarnation.restarts_of t.System.rs "eth.dp8390" = 0 && !injected < 500 then begin
      ignore (System.inject_fault t ~target:"eth.dp8390" ~image (Fault.random_type t.System.rng));
      incr injected;
      ignore (Engine.schedule t.System.engine ~after:100_000 inject_round)
    end
  in
  inject_round ();
  let crashed =
    System.run_until t ~timeout:120_000_000 (fun () ->
        Reincarnation.restarts_of t.System.rs "eth.dp8390" >= 1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "a crash was induced (after %d faults)" !injected)
    true crashed;
  (* Traffic must resume on the reincarnated driver. *)
  let after_recovery = !received in
  System.run t ~until:(Engine.now t.System.engine + 3_000_000);
  stop_stream ();
  Alcotest.(check bool)
    (Printf.sprintf "traffic resumed after recovery (%d -> %d)" after_recovery !received)
    true
    (!received > after_recovery + 10)

let test_each_fault_type_applies () =
  let t = boot_dp () in
  System.run t ~until:(Engine.now t.System.engine + 500_000);
  let image = Dp8390.image_info ~base:Hwmap.dp8390_base in
  Array.iter
    (fun ft ->
      match System.inject_fault t ~target:"eth.dp8390" ~image ft with
      | Some _ -> ()
      | None -> Alcotest.fail (Fault.to_string ft ^ " found no target instruction"))
    Fault.all

let tests =
  [
    Alcotest.test_case "udp echo through dp8390" `Quick test_udp_echo;
    Alcotest.test_case "inject until crash, then recover" `Quick test_inject_until_crash_and_recover;
    Alcotest.test_case "all 7 fault types applicable" `Quick test_each_fault_type_applies;
  ]
