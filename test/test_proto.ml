(* Tests for the shared protocol layer: endpoints, privileges, defect
   classification, specs and message helpers. *)

module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Privilege = Resilix_proto.Privilege
module Signal = Resilix_proto.Signal
module Spec = Resilix_proto.Spec
module Status = Resilix_proto.Status
module Wellknown = Resilix_proto.Wellknown

let test_endpoint_identity () =
  let a = Endpoint.make ~slot:5 ~gen:1 in
  let b = Endpoint.make ~slot:5 ~gen:2 in
  Alcotest.(check bool) "same slot, different generation" false (Endpoint.equal a b);
  Alcotest.(check bool) "equal to itself" true (Endpoint.equal a a);
  Alcotest.(check string) "rendering" "ep:5.1" (Endpoint.to_string a);
  Alcotest.(check bool) "ordered slot-major" true (Endpoint.compare a b < 0)

let test_defect_classification () =
  let cases =
    [
      (Status.Exited 0, Status.D_exit);
      (Status.Exited 3, Status.D_exit);
      (Status.Panicked "x", Status.D_exit);
      (Status.Killed Signal.Sig_segv, Status.D_exception);
      (Status.Killed Signal.Sig_ill, Status.D_exception);
      (Status.Killed Signal.Sig_kill, Status.D_killed_by_user);
      (Status.Killed Signal.Sig_term, Status.D_killed_by_user);
    ]
  in
  List.iter
    (fun (status, expected) ->
      Alcotest.(check string)
        (Status.show_exit_status status)
        (Status.defect_name expected)
        (Status.defect_name (Status.defect_of_exit status)))
    cases

let test_defect_numbers_match_paper () =
  (* Sec. 5.1 numbers the six inputs 1..6 in this order. *)
  let expected =
    [
      (Status.D_exit, 1);
      (Status.D_exception, 2);
      (Status.D_killed_by_user, 3);
      (Status.D_heartbeat, 4);
      (Status.D_complaint, 5);
      (Status.D_update, 6);
    ]
  in
  List.iter
    (fun (d, n) -> Alcotest.(check int) (Status.defect_name d) n (Status.defect_number d))
    expected

let test_privilege_allows () =
  Alcotest.(check bool) "All allows anything" true (Privilege.allows Privilege.All "whatever");
  Alcotest.(check bool) "Only allows members" true
    (Privilege.allows (Privilege.Only [ "a"; "b" ]) "b");
  Alcotest.(check bool) "Only rejects others" false
    (Privilege.allows (Privilege.Only [ "a"; "b" ]) "c")

let test_driver_privileges_are_least_authority () =
  let p = Privilege.driver ~ipc_to:[ "inet" ] ~io_ports:[ (0x300, 0x30B) ] ~irqs:[ 11 ] in
  Alcotest.(check bool) "may talk to inet" true (Privilege.allows p.Privilege.ipc_to "inet");
  Alcotest.(check bool) "may talk to rs (heartbeats)" true
    (Privilege.allows p.Privilege.ipc_to "rs");
  Alcotest.(check bool) "may not talk to pm" false (Privilege.allows p.Privilege.ipc_to "pm");
  Alcotest.(check bool) "own port allowed" true (Privilege.allows_port p 0x305);
  Alcotest.(check bool) "foreign port denied" false (Privilege.allows_port p 0x340);
  Alcotest.(check bool) "own irq" true (Privilege.allows_irq p 11);
  Alcotest.(check bool) "foreign irq" false (Privilege.allows_irq p 13);
  Alcotest.(check bool) "no process management" false
    (Privilege.allows p.Privilege.kcalls "proc_create");
  Alcotest.(check bool) "drivers cannot complain" false p.Privilege.may_complain

let test_server_privileges () =
  let p = Privilege.server ~ipc_to:Privilege.All in
  Alcotest.(check bool) "servers may complain (class 5)" true p.Privilege.may_complain;
  Alcotest.(check bool) "no hardware access" false (Privilege.allows_port p 0x300)

let test_spec_defaults () =
  let s = Spec.make ~name:"x" ~program:"p" ~privileges:Privilege.none () in
  Alcotest.(check int) "default heartbeat 500ms" 500_000 s.Spec.heartbeat_period;
  Alcotest.(check int) "default misses" 4 s.Spec.max_heartbeat_misses;
  Alcotest.(check string) "default policy is direct restart" "" s.Spec.policy

let test_wellknown_slots () =
  List.iter
    (fun (ep, name) ->
      Alcotest.(check (option string))
        name (Some name)
        (Wellknown.name_of_slot ep.Endpoint.slot))
    [
      (Wellknown.pm, "pm");
      (Wellknown.rs, "rs");
      (Wellknown.ds, "ds");
      (Wellknown.vfs, "vfs");
      (Wellknown.mfs, "mfs");
      (Wellknown.inet, "inet");
    ];
  Alcotest.(check (option string)) "dynamic slots unnamed" None
    (Wellknown.name_of_slot Wellknown.first_dynamic_slot)

let test_message_tags () =
  Alcotest.(check string) "tag of a request" "Dev_read"
    (Message.tag (Message.Dev_read { minor = 0; pos = 0; grant = 0; len = 0 }));
  Alcotest.(check string) "tag of a reply" "Rs_reply"
    (Message.tag (Message.Rs_reply { result = Ok () }))

let test_errno_strings () =
  Alcotest.(check string) "EDEADSRCDST" "EDEADSRCDST" (Errno.to_string Errno.E_dead_src_dst);
  Alcotest.(check bool) "all errnos render distinctly" true
    (let all =
       [
         Errno.E_dead_src_dst; E_bad_endpoint; E_no_perm; E_again; E_io; E_noent; E_inval;
         E_nospace; E_busy; E_timeout; E_conn_refused; E_conn_reset; E_bad_fd; E_exist;
         E_not_dir; E_is_dir; E_nodev; E_range; E_nomem;
       ]
     in
     let strings = List.map Errno.to_string all in
     List.length (List.sort_uniq String.compare strings) = List.length all)

let tests =
  [
    Alcotest.test_case "endpoint identity" `Quick test_endpoint_identity;
    Alcotest.test_case "exit status -> defect class" `Quick test_defect_classification;
    Alcotest.test_case "defect numbers match Sec. 5.1" `Quick test_defect_numbers_match_paper;
    Alcotest.test_case "privilege allow lists" `Quick test_privilege_allows;
    Alcotest.test_case "driver least authority" `Quick test_driver_privileges_are_least_authority;
    Alcotest.test_case "server privileges" `Quick test_server_privileges;
    Alcotest.test_case "spec defaults" `Quick test_spec_defaults;
    Alcotest.test_case "well-known slots" `Quick test_wellknown_slots;
    Alcotest.test_case "message tags" `Quick test_message_tags;
    Alcotest.test_case "errno strings unique" `Quick test_errno_strings;
  ]
