(* Edge-case tests for the TCP engine: sequence-number wraparound,
   segment reordering, flow control, and UDP's explicit loss tolerance
   through the full system (Sec. 6.1: "If an unreliable protocol, such
   as UDP, is used, loss of data is explicitly tolerated"). *)

module Engine = Resilix_sim.Engine
module Rng = Resilix_sim.Rng
module Tcp = Resilix_net.Tcp
module Wire = Resilix_net.Wire
module System = Resilix_system.System
module Hwmap = Resilix_system.Hwmap
module Message = Resilix_proto.Message
module Sockets = Resilix_apps.Sockets
module Api = Resilix_kernel.Sysif.Api
module Reincarnation = Resilix_core.Reincarnation

type pipe_end = {
  mutable conn : Tcp.t option;
  mutable timer : Engine.handle option;
}

(* A pipe that can delay each segment by a random extra amount,
   reordering traffic. *)
let make_pair ?(jitter = 0) ?(seed = 3) ?isn_a ?isn_b engine =
  let rng = Rng.create ~seed in
  let a = { conn = None; timer = None } and b = { conn = None; timer = None } in
  let deliver dst seg =
    let delay = 200 + if jitter > 0 then Rng.int rng jitter else 0 in
    ignore
      (Engine.schedule engine ~after:delay (fun () ->
           match dst.conn with
           | Some c -> Tcp.handle_segment c ~now:(Engine.now engine) seg
           | None -> ()))
  in
  let cb this other =
    {
      Tcp.emit = (fun seg -> deliver other seg);
      set_timer =
        (fun d ->
          (match this.timer with Some h -> Engine.cancel h | None -> ());
          this.timer <- None;
          match d with
          | Some d ->
              this.timer <-
                Some
                  (Engine.schedule engine ~after:d (fun () ->
                       this.timer <- None;
                       match this.conn with
                       | Some c -> Tcp.handle_timer c ~now:(Engine.now engine)
                       | None -> ()))
          | None -> ());
      notify = (fun _ -> ());
    }
  in
  let cfg_a =
    Tcp.default_config ~local_port:1 ~remote_port:2 ~isn:(Option.value isn_a ~default:100)
  in
  let cfg_b =
    Tcp.default_config ~local_port:2 ~remote_port:1 ~isn:(Option.value isn_b ~default:200)
  in
  b.conn <- Some (Tcp.create_passive cfg_b ~now:0 (cb b a));
  a.conn <- Some (Tcp.create_active cfg_a ~now:0 (cb a b));
  (a, b)

let transfer engine a b ~total =
  let sent = ref 0 and received = Buffer.create total in
  let ca = Option.get a.conn and cb = Option.get b.conn in
  let byte i = Char.chr ((i * 37) land 0xFF) in
  let rec feeder () =
    if !sent < total then begin
      let want = min 8000 (total - !sent) in
      let data = Bytes.init want (fun i -> byte (!sent + i)) in
      sent := !sent + Tcp.send ca ~now:(Engine.now engine) data ~off:0 ~len:want;
      if !sent >= total then Tcp.close ca ~now:(Engine.now engine);
      ignore (Engine.schedule engine ~after:1000 feeder)
    end
  in
  let rec drainer () =
    Buffer.add_bytes received (Tcp.recv cb ~max:65536);
    if Buffer.length received < total then ignore (Engine.schedule engine ~after:1000 drainer)
  in
  feeder ();
  drainer ();
  Engine.run engine ~until:120_000_000;
  let expected = String.init total byte in
  (Buffer.contents received, expected)

let test_sequence_wraparound () =
  (* ISNs just below 2^32: the stream crosses the 32-bit boundary
     almost immediately and everything still lines up. *)
  let engine = Engine.create () in
  let a, b = make_pair ~isn_a:0xFFFF_FF00 ~isn_b:0xFFFF_FFF0 engine in
  let got, expected = transfer engine a b ~total:300_000 in
  Alcotest.(check int) "all bytes across the wrap" (String.length expected) (String.length got);
  Alcotest.(check bool) "content identical" true (String.equal got expected)

let test_reordering_tolerated () =
  (* Up to 3 ms of random per-segment jitter reorders aggressively;
     the out-of-order queue must reassemble the exact stream. *)
  let engine = Engine.create () in
  let a, b = make_pair ~jitter:3000 ~seed:17 engine in
  let got, expected = transfer engine a b ~total:150_000 in
  Alcotest.(check bool) "reordered stream reassembled exactly" true (String.equal got expected)

let test_flow_control_respects_receiver () =
  (* A tiny receive window: the sender must never have more than the
     advertised window in flight, pacing itself to the slow reader. *)
  let engine = Engine.create () in
  let a = { conn = None; timer = None } and b = { conn = None; timer = None } in
  let in_flight_max = ref 0 in
  let deliver dst seg =
    ignore
      (Engine.schedule engine ~after:200 (fun () ->
           match dst.conn with
           | Some c -> Tcp.handle_segment c ~now:(Engine.now engine) seg
           | None -> ()))
  in
  let cb this other =
    {
      Tcp.emit = (fun seg -> deliver other seg);
      set_timer =
        (fun d ->
          (match this.timer with Some h -> Engine.cancel h | None -> ());
          this.timer <- None;
          match d with
          | Some d ->
              this.timer <-
                Some
                  (Engine.schedule engine ~after:d (fun () ->
                       this.timer <- None;
                       match this.conn with
                       | Some c -> Tcp.handle_timer c ~now:(Engine.now engine)
                       | None -> ()))
          | None -> ());
      notify = (fun _ -> ());
    }
  in
  let cfg_a = Tcp.default_config ~local_port:1 ~remote_port:2 ~isn:5 in
  let cfg_b =
    { (Tcp.default_config ~local_port:2 ~remote_port:1 ~isn:9) with Tcp.rx_window = 4096 }
  in
  b.conn <- Some (Tcp.create_passive cfg_b ~now:0 (cb b a));
  a.conn <- Some (Tcp.create_active cfg_a ~now:0 (cb a b));
  let ca = Option.get a.conn and cbn = Option.get b.conn in
  let total = 100_000 in
  let sent = ref 0 and received = ref 0 in
  let rec feeder () =
    if !sent < total then begin
      let data = Bytes.make (min 8000 (total - !sent)) 'w' in
      sent := !sent + Tcp.send ca ~now:(Engine.now engine) data ~off:0 ~len:(Bytes.length data);
      ignore (Engine.schedule engine ~after:500 feeder)
    end
  in
  (* Slow reader: 1 KB every 2 ms. *)
  let rec drainer () =
    let data = Tcp.recv cbn ~max:1024 in
    received := !received + Bytes.length data;
    (* rx buffer never exceeds the window it advertised *)
    if Tcp.rx_available cbn > 4096 then Alcotest.fail "receiver buffer exceeded its window";
    in_flight_max := max !in_flight_max (Tcp.rx_available cbn);
    if !received < total then ignore (Engine.schedule engine ~after:2000 drainer)
  in
  feeder ();
  drainer ();
  Engine.run engine ~until:600_000_000;
  Alcotest.(check int) "everything eventually delivered" total !received

(* UDP through the full machine: driver kills lose datagrams, nothing
   retransmits them, and the system keeps running. *)
let test_udp_loss_is_tolerated () =
  let opts = { System.default_opts with System.disk_mb = 8; inet_driver = "eth.dp8390" } in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_dp8390 ~policy:"direct" () ];
  let received = ref 0 in
  ignore
    (System.spawn_app t ~name:"udp-sink" (fun () ->
         match Sockets.socket Message.Udp with
         | Error _ -> ()
         | Ok sock ->
             ignore (Sockets.listen sock ~port:9);
             let rec pump () =
               (match Sockets.recvfrom sock ~len:2048 with
               | Ok _ -> incr received
               | Error _ -> Api.sleep 50_000);
               pump ()
             in
             pump ()));
  let stop =
    Resilix_net.Peer.start_udp_stream t.System.dp_peer ~dst_ip:Hwmap.local_ip
      ~dst_mac:Hwmap.dp8390_mac ~dst_port:9 ~src_port:6000 ~payload_len:400 ~interval:5_000
  in
  (* Kill the driver twice during a 4-second stream (200 datagrams/s). *)
  ignore
    (Engine.schedule t.System.engine ~after:1_000_000 (fun () ->
         ignore (System.kill_service_once t ~target:"eth.dp8390")));
  ignore
    (Engine.schedule t.System.engine ~after:2_500_000 (fun () ->
         ignore (System.kill_service_once t ~target:"eth.dp8390")));
  System.run t ~until:4_000_000;
  stop ();
  System.run t ~until:4_500_000;
  let sent = 4_000_000 / 5_000 in
  Alcotest.(check bool)
    (Printf.sprintf "most datagrams arrive (%d/%d)" !received sent)
    true
    (!received > sent / 2);
  Alcotest.(check bool)
    (Printf.sprintf "but kills lost some for good (%d < %d)" !received sent)
    true
    (!received < sent - 10);
  Alcotest.(check int) "driver recovered both times" 2
    (Reincarnation.restarts_of t.System.rs "eth.dp8390")

(* Two concurrent TCP downloads multiplexed over one driver. *)
let test_concurrent_downloads () =
  let size_a = 3 * 1024 * 1024 and size_b = 2 * 1024 * 1024 in
  let opts =
    {
      System.default_opts with
      System.disk_mb = 8;
      peer_files = [ ("a.bin", (size_a, 11)); ("b.bin", (size_b, 22)) ];
    }
  in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_rtl8139 () ];
  let module Wget = Resilix_apps.Wget in
  let ra = Wget.fresh_result () and rb = Wget.fresh_result () in
  ignore
    (System.spawn_app t ~name:"wget-a"
       (Wget.make ~server:Hwmap.rtl_peer_ip ~port:80 ~file:"a.bin" ra));
  ignore
    (System.spawn_app t ~name:"wget-b"
       (Wget.make ~server:Hwmap.rtl_peer_ip ~port:80 ~file:"b.bin" rb));
  (* One driver kill while both transfers are in flight. *)
  ignore
    (Engine.schedule t.System.engine ~after:300_000 (fun () ->
         ignore (System.kill_service_once t ~target:"eth.rtl8139")));
  let finished =
    System.run_until t ~timeout:300_000_000 (fun () -> ra.Wget.finished && rb.Wget.finished)
  in
  Alcotest.(check bool) "both transfers finished" true finished;
  Alcotest.(check string) "a.bin intact"
    (Resilix_net.Filegen.fnv_digest ~seed:11 ~size:size_a)
    ra.Wget.fnv;
  Alcotest.(check string) "b.bin intact"
    (Resilix_net.Filegen.fnv_digest ~seed:22 ~size:size_b)
    rb.Wget.fnv

(* Property: a storm of kills against several guarded services always
   ends with everything back up. *)
let prop_kill_storm_always_recovers =
  QCheck.Test.make ~name:"every kill in a storm is recovered" ~count:8
    QCheck.(pair (int_range 1 3) (int_range 1 5))
    (fun (nservices, kills_each) ->
      let t = System.boot ~opts:{ System.default_opts with System.disk_mb = 8 } () in
      let module Kernel = Resilix_kernel.Kernel in
      let module Spec = Resilix_proto.Spec in
      let module Privilege = Resilix_proto.Privilege in
      Kernel.register_program t.System.kernel "docile" (fun () ->
          Resilix_drivers.Driver_lib.run_dev Resilix_drivers.Driver_lib.default_dev_handlers);
      let names = List.init nservices (fun i -> Printf.sprintf "svc.storm%d" i) in
      System.start_services t
        (List.map
           (fun name ->
             Spec.make ~name ~program:"docile"
               ~privileges:(Privilege.driver ~ipc_to:[] ~io_ports:[] ~irqs:[])
               ~heartbeat_period:0 ~mem_kb:64 ())
           names);
      List.iteri
        (fun i name ->
          for k = 1 to kills_each do
            ignore
              (Engine.schedule t.System.engine
                 ~after:((k * 200_000) + (i * 37_000))
                 (fun () -> ignore (System.kill_service_once t ~target:name)))
          done)
        names;
      System.run t ~until:(Engine.now t.System.engine + ((kills_each + 4) * 400_000));
      List.for_all (fun name -> Reincarnation.service_up t.System.rs name) names
      && List.for_all
           (fun name -> Reincarnation.restarts_of t.System.rs name = kills_each)
           names)

let tests =
  [
    Alcotest.test_case "sequence-number wraparound" `Quick test_sequence_wraparound;
    Alcotest.test_case "segment reordering tolerated" `Quick test_reordering_tolerated;
    Alcotest.test_case "flow control respects the receiver" `Quick test_flow_control_respects_receiver;
    Alcotest.test_case "udp loss tolerated across driver kills" `Quick test_udp_loss_is_tolerated;
    Alcotest.test_case "concurrent downloads over one driver" `Quick test_concurrent_downloads;
    QCheck_alcotest.to_alcotest prop_kill_storm_always_recovers;
  ]
