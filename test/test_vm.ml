(* Tests for the driver VM: assembler/decoder, interpreter semantics,
   failure surface (panic / SIGILL / SIGSEGV / runaway loop), and the
   seven fault types of the injector. *)

module Engine = Resilix_sim.Engine
module Trace = Resilix_sim.Trace
module Rng = Resilix_sim.Rng
module Kernel = Resilix_kernel.Kernel
module Memory = Resilix_kernel.Memory
module Sysif = Resilix_kernel.Sysif
module Api = Resilix_kernel.Sysif.Api
module Privilege = Resilix_proto.Privilege
module Isa = Resilix_vm.Isa
module Interp = Resilix_vm.Interp
module Fault = Resilix_vm.Fault

let all_priv =
  {
    Privilege.none with
    Privilege.ipc_to = Privilege.All;
    kcalls = Privilege.All;
    io_ports = [ (0, 0xFFFF) ];
    irqs = [ 1 ];
  }

let make_kernel () =
  let engine = Engine.create () in
  let kernel =
    Kernel.create ~engine ~trace:(Trace.create ()) ~rng:(Rng.create ~seed:3) ()
  in
  (engine, kernel)

(* Run [body] inside a process fiber and return its result. *)
let in_fiber ?(mem_kb = 64) body =
  let engine, kernel = make_kernel () in
  let result = ref None in
  Kernel.register_program kernel "t" (fun () -> result := Some (body ()));
  (match Kernel.spawn_dynamic kernel ~name:"t" ~program:"t" ~args:[] ~priv:all_priv ~mem_kb with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "spawn");
  Engine.run engine ~until:60_000_000;
  (!result, kernel)

let run_program ?regs code =
  let regs = match regs with Some r -> r | None -> Array.make 8 0 in
  let result, _ =
    in_fiber (fun () ->
        let program = Interp.load ~base:0x1000 (Isa.assemble code) in
        let r0 = Interp.run program ~regs in
        (r0, Array.copy regs))
  in
  match result with Some r -> r | None -> Alcotest.fail "program did not finish"

let test_arithmetic () =
  (* sum 1..10 with a countdown loop *)
  let code =
    Isa.
      [
        Movi (R1, 10);
        Movi (R0, 0);
        Label "loop";
        Jz (R1, "done");
        Add (R0, R1);
        Addi (R1, -1);
        Jmp "loop";
        Label "done";
        Ret;
      ]
  in
  let r0, _ = run_program code in
  Alcotest.(check int) "sum 1..10" 55 r0

let test_memory_ops () =
  let code =
    Isa.
      [
        Movi (R1, 0x4000);
        Movi (R2, 0xDEAD);
        Store (R1, 0, R2);
        Load (R3, R1, 0);
        Mov (R0, R3);
        Storeb (R1, 8, R2);
        Loadb (R4, R1, 8);
        Ret;
      ]
  in
  let r0, regs = run_program code in
  Alcotest.(check int) "word store/load" 0xDEAD r0;
  Alcotest.(check int) "byte store/load truncates" 0xAD regs.(4)

let test_shifts_and_masks () =
  let code =
    Isa.[ Movi (R1, 0xF0F0); Shr (R1, 4); Andi (R1, 0xFF); Shl (R1, 8); Mov (R0, R1); Ret ]
  in
  let r0, _ = run_program code in
  Alcotest.(check int) "shr/andi/shl pipeline" 0x0F00 r0

let test_check_failure_is_catchable () =
  let result, _ =
    in_fiber (fun () ->
        let program = Interp.load ~base:0x1000 (Isa.assemble Isa.[ Movi (R0, 5); Chkeq (R0, 6); Ret ]) in
        match Interp.run program ~regs:(Array.make 8 0) with
        | _ -> "no trap"
        | exception Interp.Check_failed _ -> "check failed")
  in
  Alcotest.(check (option string)) "Chk failure raises Check_failed" (Some "check failed") result

let test_illegal_opcode_kills_sigill () =
  let _, kernel =
    in_fiber (fun () ->
        let image = Isa.assemble Isa.[ Nop; Ret ] in
        Bytes.set image 0 '\xEE' (* junk opcode *);
        let program = Interp.load ~base:0x1000 image in
        ignore (Interp.run program ~regs:(Array.make 8 0)))
  in
  Alcotest.(check bool) "killed by SIGILL" true
    (Trace.query (Kernel.trace kernel) ~pred:(fun e ->
         match e.Trace.payload with
         | Resilix_obs.Event.Exit
             { status = Resilix_proto.Status.Killed Resilix_proto.Signal.Sig_ill; _ } ->
             true
         | _ -> false)
    <> [])

let test_wild_pointer_kills_sigsegv () =
  let _, kernel =
    in_fiber (fun () ->
        let code = Isa.[ Movi (R1, 0x7FFFFFF); Load (R0, R1, 0); Ret ] in
        let program = Interp.load ~base:0x1000 (Isa.assemble code) in
        ignore (Interp.run program ~regs:(Array.make 8 0)))
  in
  Alcotest.(check bool) "killed by SIGSEGV" true
    (Trace.query (Kernel.trace kernel) ~pred:(fun e ->
         match e.Trace.payload with
         | Resilix_obs.Event.Exit
             { status = Resilix_proto.Status.Killed Resilix_proto.Signal.Sig_segv; _ } ->
             true
         | _ -> false)
    <> [])

let test_runaway_loop_consumes_time_not_host () =
  (* An infinite VM loop must keep yielding virtual time (so heartbeat
     detection can catch it) rather than hanging the simulator. *)
  let engine, kernel = make_kernel () in
  Kernel.register_program kernel "spin" (fun () ->
      let code = Isa.[ Label "x"; Jmp "x" ] in
      let program = Interp.load ~base:0x1000 (Isa.assemble code) in
      ignore (Interp.run program ~regs:(Array.make 8 0)));
  (match
     Kernel.spawn_dynamic kernel ~name:"spin" ~program:"spin" ~args:[] ~priv:all_priv ~mem_kb:64
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "spawn");
  Engine.run engine ~until:2_000_000 ~max_events:10_000_000;
  Alcotest.(check bool) "virtual clock advanced past 1s" true (Engine.now engine >= 1_000_000);
  Alcotest.(check bool) "process still alive (stuck)" true
    (Kernel.find_by_name kernel "spin" <> None)

let test_out_of_range_port_is_io_failure () =
  let result, _ =
    in_fiber (fun () ->
        (* No I/O handler installed and the port is inside our
           privilege range, so devio returns E_io -> Io_failed. *)
        let code = Isa.[ In (R0, 0x123); Ret ] in
        let program = Interp.load ~base:0x1000 (Isa.assemble code) in
        match Interp.run program ~regs:(Array.make 8 0) with
        | _ -> "no trap"
        | exception Interp.Io_failed _ -> "io failed")
  in
  Alcotest.(check (option string)) "port failure raises Io_failed" (Some "io failed") result

(* --- fault injector --- *)

let demo_code =
  Isa.
    [
      Movi (R1, 16);
      Movi (R2, 0x4000);
      Label "loop";
      Jz (R1, "end");
      Load (R3, R2, 0);
      Store (R2, 4, R3);
      Addi (R2, 8);
      Addi (R1, -1);
      Jmp "loop";
      Label "end";
      Chkeq (R1, 0);
      Ret;
    ]

let with_image f =
  let result, _ =
    in_fiber (fun () ->
        let image = Isa.assemble demo_code in
        let program = Interp.load ~base:0x1000 image in
        let mem = Api.memory () in
        f mem program (Bytes.length image / Isa.instr_size))
  in
  match result with Some r -> r | None -> Alcotest.fail "fiber died"

let test_each_fault_type_mutates_image () =
  Array.iter
    (fun ft ->
      let changed =
        with_image (fun mem program insn_count ->
            let before = Memory.read mem ~addr:program.Interp.base ~len:(insn_count * 8) in
            let rng = Rng.create ~seed:11 in
            match Fault.inject rng mem ~base:program.Interp.base ~insn_count ft with
            | None -> false
            | Some _ ->
                let after = Memory.read mem ~addr:program.Interp.base ~len:(insn_count * 8) in
                not (Bytes.equal before after))
      in
      Alcotest.(check bool) (Fault.to_string ft ^ " mutates the image") true changed)
    Fault.all

let test_invert_loop_flips_conditional () =
  let ok =
    with_image (fun mem program insn_count ->
        let rng = Rng.create ~seed:5 in
        match Fault.inject rng mem ~base:program.Interp.base ~insn_count Fault.Invert_loop with
        | None -> false
        | Some desc ->
            (* Find the mutated instruction: it must decode as Jz or
               Jnz still (the condition flipped, not destroyed). *)
            ignore desc;
            let image = Memory.read mem ~addr:program.Interp.base ~len:(insn_count * 8) in
            let rec any_cond i =
              if i >= insn_count then false
              else
                match Isa.decode image ~index:i with
                | Isa.D_jnz _ -> true (* original had only one Jz; a Jnz proves the flip *)
                | _ -> any_cond (i + 1)
                | exception Isa.Illegal_instruction _ -> any_cond (i + 1)
            in
            any_cond 0)
  in
  Alcotest.(check bool) "Jz became Jnz" true ok

let test_elide_becomes_nop () =
  let ok =
    with_image (fun mem program insn_count ->
        let rng = Rng.create ~seed:9 in
        let before = Memory.read mem ~addr:program.Interp.base ~len:(insn_count * 8) in
        match Fault.inject rng mem ~base:program.Interp.base ~insn_count Fault.Elide with
        | None -> false
        | Some _ ->
            let after = Memory.read mem ~addr:program.Interp.base ~len:(insn_count * 8) in
            (* exactly one opcode byte changed, to NOP (0x01) *)
            let diffs = ref [] in
            for i = 0 to insn_count - 1 do
              if Bytes.get before (i * 8) <> Bytes.get after (i * 8) then diffs := i :: !diffs
            done;
            (match !diffs with
            | [ i ] -> Char.code (Bytes.get after (i * 8)) = 0x01
            | _ -> false))
  in
  Alcotest.(check bool) "elide rewrites one opcode to NOP" true ok

let prop_assemble_length =
  QCheck.Test.make ~name:"assemble emits 8 bytes per real instruction" ~count:100
    QCheck.(int_range 0 50)
    (fun n ->
      let code = List.concat (List.init n (fun i -> Isa.[ Movi (R1, i); Label (string_of_int i) ])) in
      Bytes.length (Isa.assemble code) = n * Isa.instr_size)

let prop_corrupted_image_never_hangs_decode =
  (* Decoding arbitrary bytes either yields an instruction or raises
     Illegal_instruction — never loops or crashes the host. *)
  QCheck.Test.make ~name:"decode is total on junk" ~count:500
    QCheck.(string_of_size (QCheck.Gen.return 8))
    (fun junk ->
      let b = Bytes.of_string junk in
      match Isa.decode b ~index:0 with
      | _ -> true
      | exception Isa.Illegal_instruction _ -> true)

let test_disassembler () =
  let image =
    Isa.assemble Isa.[ Movi (R1, 7); Load (R2, R1, 4); Out (0x305, R2); Jz (R1, "end"); Label "end"; Ret ]
  in
  Alcotest.(check (list string))
    "disassembly"
    [ "movi r1, 7"; "load r2, [r1+4]"; "out 0x305, r2"; "jz r1, 4"; "ret" ]
    (Isa.disassemble image);
  Bytes.set image 0 '\xEE';
  Alcotest.(check string) "illegal rendering" "<illegal 0xEE>" (Isa.disassemble_one image ~index:0)

let tests =
  [
    Alcotest.test_case "arithmetic loop" `Quick test_arithmetic;
    Alcotest.test_case "disassembler" `Quick test_disassembler;
    Alcotest.test_case "memory ops" `Quick test_memory_ops;
    Alcotest.test_case "shifts and masks" `Quick test_shifts_and_masks;
    Alcotest.test_case "consistency check raises" `Quick test_check_failure_is_catchable;
    Alcotest.test_case "illegal opcode kills with SIGILL" `Quick test_illegal_opcode_kills_sigill;
    Alcotest.test_case "wild pointer kills with SIGSEGV" `Quick test_wild_pointer_kills_sigsegv;
    Alcotest.test_case "runaway loop yields virtual time" `Quick test_runaway_loop_consumes_time_not_host;
    Alcotest.test_case "bad port access raises Io_failed" `Quick test_out_of_range_port_is_io_failure;
    Alcotest.test_case "all fault types mutate the image" `Quick test_each_fault_type_mutates_image;
    Alcotest.test_case "invert-loop flips Jz/Jnz" `Quick test_invert_loop_flips_conditional;
    Alcotest.test_case "elide rewrites to NOP" `Quick test_elide_becomes_nop;
    QCheck_alcotest.to_alcotest prop_assemble_length;
    QCheck_alcotest.to_alcotest prop_corrupted_image_never_hangs_decode;
  ]
