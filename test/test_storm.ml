(* The C10K storm workload: httpd worker pool + load generator under
   mid-storm driver kills.

   Everything here runs at smoke scale (the builtin 64-request storm
   or smaller) so `dune runtest` stays fast; the 1000-connection run
   lives in test/slow behind RESILIX_SLOW_TESTS=1. *)

module Engine = Resilix_sim.Engine
module System = Resilix_system.System
module Hwmap = Resilix_system.Hwmap
module Peer = Resilix_net.Peer
module Tcp = Resilix_net.Tcp
module Metrics = Resilix_obs.Metrics
module Httpd = Resilix_apps.Httpd
module Loadgen = Resilix_load.Loadgen
module Scenario = Resilix_dst.Scenario
module Invariant = Resilix_dst.Invariant
module Explore = Resilix_dst.Explore

let storm_stats r =
  match r.Scenario.r_storm with
  | Some s -> s
  | None -> Alcotest.fail "storm report missing r_storm"

let run_builtin ~seed =
  let sc = Scenario.storm in
  let plan = sc.Scenario.plan ~seed ~faults:sc.Scenario.default_faults in
  sc.Scenario.run ~seed ~policy:Engine.Fifo ~plan

(* The tentpole smoke: a mid-storm kill of the Ethernet driver must
   leave every request resolved, every digest clean, and every DST
   invariant intact. *)
let test_storm_smoke () =
  let r = run_builtin ~seed:7 in
  let s = storm_stats r in
  Alcotest.(check bool) "storm finished" true r.Scenario.r_completed;
  Alcotest.(check bool) "digests clean" true r.Scenario.r_checksum_ok;
  Alcotest.(check bool) "the kill was applied" true (r.Scenario.r_applied >= 1);
  Alcotest.(check int) "every request resolved" s.Scenario.s_requests
    (s.Scenario.s_completed + s.Scenario.s_mismatches + s.Scenario.s_timeouts
   + s.Scenario.s_failed);
  Alcotest.(check bool) "most requests completed"
    true
    (s.Scenario.s_completed >= s.Scenario.s_requests * 8 / 10);
  Alcotest.(check bool) "the server actually served" true (s.Scenario.s_served > 0);
  Alcotest.(check bool) "latency quantiles populated" true
    (s.Scenario.s_p50 > 0 && s.Scenario.s_p50 <= s.Scenario.s_p95
    && s.Scenario.s_p95 <= s.Scenario.s_p99);
  let vs = Invariant.check ~bound:Explore.default_bound r in
  Alcotest.(check (list string)) "invariants hold" [] (Invariant.names vs)

(* Byte-identical reports: the same seed yields the same storm, down
   to the rendered report lines and the engine's decision trace. *)
let test_storm_deterministic () =
  let r1 = run_builtin ~seed:11 and r2 = run_builtin ~seed:11 in
  Alcotest.(check (list string))
    "report lines identical" (Scenario.storm_lines r1) (Scenario.storm_lines r2);
  Alcotest.(check bool) "decision traces identical" true
    (r1.Scenario.r_decisions = r2.Scenario.r_decisions);
  Alcotest.(check bool) "shapes identical" true
    (Int64.equal r1.Scenario.r_shape r2.Scenario.r_shape)

(* The storm is registered with the explorer, and exploring it is
   jobs-invariant: the same seeded batch on one domain and on two
   yields identical findings (here: none — the default bound keeps
   clean runs clean). *)
let test_storm_explore_jobs_invariant () =
  (match Scenario.find "storm" with
  | Some sc -> Alcotest.(check string) "storm is a builtin" "storm" sc.Scenario.name
  | None -> Alcotest.fail "storm not registered as a builtin scenario");
  let explore jobs = Explore.run ~jobs Scenario.storm ~seed:5 ~runs:4 () in
  let r1 = explore 1 and r2 = explore 2 in
  Alcotest.(check int) "same failure count" (List.length r1.Explore.failures)
    (List.length r2.Explore.failures);
  Alcotest.(check (list int)) "same failing run indices"
    (List.map (fun (o : Explore.outcome) -> o.Explore.o_index) r1.Explore.failures)
    (List.map (fun (o : Explore.outcome) -> o.Explore.o_index) r2.Explore.failures);
  Alcotest.(check (list string)) "clean under the default bound" []
    (List.concat_map
       (fun (o : Explore.outcome) -> Invariant.names o.Explore.o_violations)
       r1.Explore.failures)

(* Bounded accept backlog: with a 2-deep backlog and no workers
   accepting, further SYNs must be refused with RST — the client sees
   a reset before the handshake completes, and INET counts each
   refusal. *)
let test_backlog_overflow () =
  let t = System.boot () in
  System.start_services t [ System.spec_rtl8139 ~policy:"direct" () ];
  let hstats = Httpd.fresh_stats () in
  ignore
    (System.spawn_app t ~name:"listener-only" (Httpd.listener ~backlog:2 ~port:80 hstats));
  ignore (System.run_until t ~timeout:5_000_000 (fun () -> hstats.Httpd.listening));
  let refused = ref 0 and established = ref 0 in
  for _ = 1 to 6 do
    ignore
      (Peer.open_flow t.System.rtl_peer ~dst_ip:Hwmap.local_ip ~dst_mac:Hwmap.rtl8139_mac
         ~dst_port:80
         ~notify:(fun flow ev ->
           match ev with
           | Tcp.Ev_established -> incr established
           | Tcp.Ev_reset -> if not (Tcp.is_established (Peer.flow_tcp flow)) then incr refused
           | _ -> ())
         ())
  done;
  System.run t ~until:(Engine.now t.System.engine + 3_000_000);
  Alcotest.(check int) "backlog admits exactly 2" 2 !established;
  Alcotest.(check int) "the other 4 SYNs are refused" 4 !refused;
  let snap = Metrics.snapshot t.System.metrics in
  Alcotest.(check int) "INET counts each refusal" 4
    (Metrics.counter_value snap "inet.accept_refused")

(* Many simultaneous connections in one engine, no faults: a pure
   concurrency check on the TCP engine, the shared-socket accept path
   and the connection table. *)
let test_many_connections_clean () =
  let opts = { System.default_opts with System.seed = 21; disk_mb = 8 } in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_rtl8139 ~policy:"direct" () ];
  let hstats = Httpd.fresh_stats () in
  ignore (System.spawn_app t ~name:"httpd-listener" (Httpd.listener ~backlog:32 ~port:80 hstats));
  ignore (System.run_until t ~timeout:5_000_000 (fun () -> hstats.Httpd.listening));
  for i = 1 to 8 do
    ignore (System.spawn_app t ~name:(Printf.sprintf "httpd-w%d" i) (Httpd.worker hstats))
  done;
  let config =
    {
      Loadgen.default_config with
      Loadgen.requests = 40;
      concurrency = 40;
      arrival_interval = 500;
      slow_fraction = 0.;
      size_mix = [| (1, 8_192) |];
    }
  in
  let lg =
    Loadgen.create ~engine:t.System.engine ~seed:21 ~peer:t.System.rtl_peer
      ~metrics:t.System.metrics ~config ~dst_ip:Hwmap.local_ip ~dst_mac:Hwmap.rtl8139_mac ()
  in
  Loadgen.start lg;
  let finished = System.run_until t ~timeout:60_000_000 (fun () -> Loadgen.finished lg) in
  let s = Loadgen.stats lg in
  Alcotest.(check bool) "run finished" true finished;
  Alcotest.(check int) "all 40 completed" 40 s.Loadgen.completed;
  Alcotest.(check int) "no mismatches" 0 s.Loadgen.digest_mismatches;
  Alcotest.(check int) "no timeouts" 0 s.Loadgen.timeouts;
  Alcotest.(check int) "server served all 40" 40 hstats.Httpd.requests

(* Retransmission repairs the stream across a driver outage: kill the
   driver while transfers are in flight and confirm TCP retransmitted
   (rather than the transfers failing). *)
let test_retransmit_through_outage () =
  let r = run_builtin ~seed:3 in
  let s = storm_stats r in
  Alcotest.(check bool) "a kill landed mid-storm" true (s.Scenario.s_outage_at > 0);
  Alcotest.(check bool) "recovery span closed" true
    (s.Scenario.s_recovered_by > s.Scenario.s_outage_at);
  Alcotest.(check bool) "storm still completed" true
    (s.Scenario.s_completed >= s.Scenario.s_requests * 8 / 10);
  Alcotest.(check int) "nothing corrupted" 0 s.Scenario.s_mismatches

let tests =
  [
    Alcotest.test_case "storm smoke: kill mid-storm, invariants hold" `Quick test_storm_smoke;
    Alcotest.test_case "storm is deterministic" `Quick test_storm_deterministic;
    Alcotest.test_case "exploring the storm is jobs-invariant" `Quick
      test_storm_explore_jobs_invariant;
    Alcotest.test_case "accept backlog overflow refuses SYNs" `Quick test_backlog_overflow;
    Alcotest.test_case "many concurrent connections, clean run" `Quick
      test_many_connections_clean;
    Alcotest.test_case "retransmit through the outage" `Quick test_retransmit_through_outage;
  ]
