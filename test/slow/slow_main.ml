(* Paper-scale jobs-invariance checks, gated behind RESILIX_SLOW_TESTS=1.

   `dune runtest` exercises the determinism contract at smoke scale
   (see test/test_harness.ml); this binary reruns it at the paper's
   actual workload sizes — Fig. 7 at 512 MB and Fig. 8 at 1 GB, every
   kill interval — comparing a sequential run against a 4-domain run
   with the progress observer enabled.  Rows, JSONL observability
   bytes and the experiments' internal integrity checks must all
   agree.

   Invoke via the @slow alias:

     RESILIX_SLOW_TESTS=1 dune build @slow

   Without the gate variable the binary skips (exit 0) so the alias is
   always safe to build.  RESILIX_SLOW_FIG7_MB / RESILIX_SLOW_FIG8_MB
   override the workload sizes for a quicker manual run. *)

module E = Resilix_experiments
module Campaign = Resilix_harness.Campaign

let env_mb var default =
  match Sys.getenv_opt var with
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ -> Printf.eprintf "slow: ignoring %s=%S (want a positive MB count)\n%!" var s; default)

let mb = 1024 * 1024
let failures = ref 0

let check what ok =
  if ok then Printf.printf "slow: OK   %s\n%!" what
  else begin
    incr failures;
    Printf.printf "slow: FAIL %s\n%!" what
  end

(* Run one sweep, collecting the JSONL observability bytes and the
   number of progress events (the observer must be live during the
   comparison — that is the point of the test). *)
let sweep run ~jobs =
  let buf = Buffer.create (1 lsl 16) in
  let events = ref 0 in
  let rows =
    run ~jobs
      ~on_progress:(fun (_ : Campaign.progress) -> incr events)
      ~obs:(fun line -> Buffer.add_string buf line; Buffer.add_char buf '\n')
  in
  (rows, Buffer.contents buf, !events)

let invariant name ~trials run ok =
  let t0 = Unix.gettimeofday () in
  let rows1, obs1, ev1 = sweep run ~jobs:1 in
  let rows4, obs4, ev4 = sweep run ~jobs:4 in
  check (name ^ ": rows identical for jobs=1 and jobs=4") (rows1 = rows4);
  check (name ^ ": observability bytes identical") (obs1 = obs4);
  check (name ^ ": integrity check passes") (ok rows1);
  check (Printf.sprintf "%s: progress observer saw every trial (%d)" name trials)
    (ev1 = trials && ev4 = trials);
  Printf.printf "slow: %s done in %.1fs host wall clock\n%!" name (Unix.gettimeofday () -. t0)

let () =
  if Sys.getenv_opt "RESILIX_SLOW_TESTS" <> Some "1" then begin
    print_endline "slow: skipped (set RESILIX_SLOW_TESTS=1 to run the paper-scale checks)";
    exit 0
  end;
  let fig7_mb = env_mb "RESILIX_SLOW_FIG7_MB" 512 in
  let fig8_mb = env_mb "RESILIX_SLOW_FIG8_MB" 1024 in
  let intervals = [ 1; 2; 4; 8; 15 ] in
  let trials = 1 + List.length intervals (* baseline + one per interval *) in
  Printf.printf "slow: fig7 at %d MB, fig8 at %d MB, intervals 1,2,4,8,15\n%!" fig7_mb fig8_mb;
  invariant "fig7 (paper scale)" ~trials
    (fun ~jobs ~on_progress ~obs ->
      E.Fig7.run ~jobs ~on_progress ~size:(fig7_mb * mb) ~intervals ~seed:42 ~obs ())
    E.Fig7.ok;
  invariant "fig8 (paper scale)" ~trials
    (fun ~jobs ~on_progress ~obs ->
      E.Fig8.run ~jobs ~on_progress ~size:(fig8_mb * mb) ~intervals ~seed:42 ~obs ())
    E.Fig8.ok;
  (* DST at exploration scale: a large seeded batch over both built-in
     scenarios.  The runtest batch (test/dst) proves the pipeline on a
     handful of runs; this proves the determinism contract holds over
     hundreds of schedule permutations, jobs=1 vs jobs=4. *)
  let module Explore = Resilix_dst.Explore in
  let module Scenario = Resilix_dst.Scenario in
  List.iter
    (fun (name, runs, bound) ->
      match Scenario.find name with
      | None -> check (Printf.sprintf "dst: scenario %s exists" name) false
      | Some sc ->
          let t0 = Unix.gettimeofday () in
          let explore jobs = Explore.run ~jobs sc ~seed:42 ~runs ~bound () in
          let r1 = explore 1 and r4 = explore 4 in
          let key (o : Explore.outcome) =
            (o.Explore.o_index, o.Explore.o_seed, o.Explore.o_plan,
             Array.to_list o.Explore.o_decisions, o.Explore.o_violations)
          in
          check
            (Printf.sprintf "dst %s: %d-run exploration identical for jobs=1 and jobs=4" name
               runs)
            (List.map key r1.Explore.failures = List.map key r4.Explore.failures);
          check
            (Printf.sprintf "dst %s: generous bound stays clean" name)
            (r1.Explore.failures = []);
          Printf.printf "slow: dst %s done in %.1fs host wall clock\n%!" name
            (Unix.gettimeofday () -. t0))
    [
      ("wget", 200, Explore.default_bound);
      ("dp-inject", 100, Explore.default_bound);
      ("storm", 50, Explore.default_bound);
    ];
  (* The C10K storm at full scale: 1000 concurrent connections against
     a 64-worker httpd pool with a mid-storm driver kill.  The rendered
     report must be byte-identical across repeats, every request must
     resolve, and the DST invariants must hold. *)
  (let module Engine = Resilix_sim.Engine in
   let module Invariant = Resilix_dst.Invariant in
   let requests = 1000 in
   let sc =
     Scenario.storm_sized ~requests ~concurrency:1000 ~workers:64 ~backlog:256 ()
   in
   let plan = sc.Scenario.plan ~seed:42 ~faults:sc.Scenario.default_faults in
   let t0 = Unix.gettimeofday () in
   let run () = sc.Scenario.run ~seed:42 ~policy:Engine.Fifo ~plan in
   let r1 = run () and r2 = run () in
   check "storm 1000: byte-identical report across repeats"
     (Scenario.storm_lines r1 = Scenario.storm_lines r2);
   check "storm 1000: invariants clean"
     (Invariant.check ~bound:Explore.default_bound r1 = []);
   (match r1.Scenario.r_storm with
   | Some s ->
       check "storm 1000: every request resolved"
         (s.Scenario.s_completed + s.Scenario.s_mismatches + s.Scenario.s_timeouts
          + s.Scenario.s_failed
         = requests);
       check "storm 1000: no corrupted responses" (s.Scenario.s_mismatches = 0)
   | None -> check "storm 1000: stats present" false);
   Printf.printf "slow: storm 1000 done in %.1fs host wall clock\n%!"
     (Unix.gettimeofday () -. t0));
  if !failures > 0 then begin
    Printf.eprintf "slow: %d check(s) failed\n%!" !failures;
    exit 1
  end;
  print_endline "slow: all paper-scale invariance checks passed"
