(* Tests for lib/dst: fault plans, repro-file round-trips, invariant
   checking, seeded exploration, replay, and trace shrinking.

   The exploration/replay/shrink tests run on a synthetic "toy"
   scenario that drives a bare engine instead of booting a full
   machine, so the whole suite stays instant; the full-machine path is
   exercised by the @dst batch (test/dst) and the CLI. *)

module Engine = Resilix_sim.Engine
module Rng = Resilix_sim.Rng
module Span = Resilix_obs.Span
module Status = Resilix_proto.Status
module Fault = Resilix_vm.Fault
module Fnv = Resilix_checksum.Fnv
module Fault_plan = Resilix_dst.Fault_plan
module Scenario = Resilix_dst.Scenario
module Invariant = Resilix_dst.Invariant
module Repro = Resilix_dst.Repro
module Explore = Resilix_dst.Explore
module Replay = Resilix_dst.Replay
module Corpus = Resilix_dst.Corpus
module Mutate = Resilix_dst.Mutate

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)
(* ------------------------------------------------------------------ *)

let test_plan_pure_and_sorted () =
  let gen () =
    Fault_plan.generate ~seed:5 ~targets:[ "a"; "b" ] ~n:12 ~start:100 ~horizon:10_000 ()
  in
  let p1 = gen () and p2 = gen () in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  Alcotest.(check int) "requested length" 12 (List.length p1);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Fault_plan.at <= b.Fault_plan.at && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted by time" true (sorted p1);
  List.iter
    (fun e ->
      Alcotest.(check bool) "time in window" true (e.Fault_plan.at >= 100 && e.Fault_plan.at < 10_000);
      Alcotest.(check bool) "known target" true (List.mem e.Fault_plan.target [ "a"; "b" ]))
    p1

let test_plan_inject_prob () =
  let all_kills = Fault_plan.generate ~seed:5 ~targets:[ "a" ] ~n:20 () in
  Alcotest.(check bool) "prob 0 means all kills" true
    (List.for_all (fun e -> e.Fault_plan.action = Fault_plan.Kill) all_kills);
  let all_injects = Fault_plan.generate ~seed:5 ~targets:[ "a" ] ~n:20 ~inject_prob:1.0 () in
  Alcotest.(check bool) "prob 1 means all valid injections" true
    (List.for_all
       (fun e ->
         match e.Fault_plan.action with
         | Fault_plan.Inject i -> i >= 0 && i < Array.length Fault.all
         | Fault_plan.Kill -> false)
       all_injects)

let test_plan_invalid_args () =
  Alcotest.check_raises "negative n" (Invalid_argument "Fault_plan.generate: negative n")
    (fun () -> ignore (Fault_plan.generate ~seed:1 ~targets:[ "a" ] ~n:(-1) ()));
  Alcotest.check_raises "no targets" (Invalid_argument "Fault_plan.generate: no targets")
    (fun () -> ignore (Fault_plan.generate ~seed:1 ~targets:[] ~n:1 ()))

(* ------------------------------------------------------------------ *)
(* Repro files                                                         *)
(* ------------------------------------------------------------------ *)

let sample_repro =
  {
    Repro.scenario = "toy";
    seed = 1234567890123;
    bound = 1_000;
    plan =
      [
        { Fault_plan.at = 100; target = "eth.rtl8139"; action = Fault_plan.Kill };
        { Fault_plan.at = 250; target = "eth.dp8390"; action = Fault_plan.Inject 3 };
      ];
    decisions = [| 0; 2; 1 |];
    violations =
      [
        {
          Invariant.v_invariant = "span-completeness";
          (* Exercises the string escaping on the round-trip. *)
          v_detail = "says \"late\"\twith \\ and\nnewline";
        };
      ];
  }

let test_repro_roundtrip () =
  let lines = Repro.to_lines sample_repro in
  Alcotest.(check int) "header + 2 faults + decisions + violation" 5 (List.length lines);
  match Repro.of_lines lines with
  | Error m -> Alcotest.fail ("round-trip failed: " ^ m)
  | Ok r -> Alcotest.(check bool) "round-trip preserves everything" true (r = sample_repro)

let test_repro_file_roundtrip () =
  let path = Filename.temp_file "dst-repro" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Repro.save sample_repro path;
      match Repro.load path with
      | Error m -> Alcotest.fail ("load failed: " ^ m)
      | Ok r -> Alcotest.(check bool) "save/load preserves everything" true (r = sample_repro))

let test_repro_rejects_garbage () =
  let bad lines =
    match Repro.of_lines lines with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "empty input" true (bad []);
  Alcotest.(check bool) "not a repro header" true (bad [ {|{"type":"fault","at":1}|} ]);
  Alcotest.(check bool) "broken json" true
    (bad [ {|{"type":"dst-repro","version":1,"scenario":"x","seed":|} ]);
  Alcotest.(check bool) "unknown fault action" true
    (bad
       [
         {|{"type":"dst-repro","version":1,"scenario":"x","seed":1,"bound":2}|};
         {|{"type":"fault","at":1,"target":"t","action":"frobnicate"}|};
       ])

(* The parser must reverse anything a standard JSON writer emits:
   code points above 0xFF decode to their UTF-8 bytes (a historical
   bug truncated them with [land 0xff]) and surrogate pairs combine
   into supplementary code points. *)
let test_repro_unicode_escapes () =
  let detail_of lines =
    match Repro.of_lines lines with
    | Ok { Repro.violations = [ v ]; _ } -> v.Invariant.v_detail
    | Ok _ -> Alcotest.fail "expected exactly one violation"
    | Error m -> Alcotest.fail m
  in
  let header = {|{"type":"dst-repro","version":1,"scenario":"x","seed":1,"bound":2}|} in
  let with_detail d =
    [ header; Printf.sprintf {|{"type":"violation","invariant":"i","detail":"%s"}|} d ]
  in
  Alcotest.(check string) "BMP code point decodes to UTF-8" "\xc5\x82"
    (detail_of (with_detail {|\u0142|}));
  Alcotest.(check string) "surrogate pair combines" "\xf0\x9f\x98\x80"
    (detail_of (with_detail {|\ud83d\ude00|}));
  Alcotest.(check string) "control escape stays one byte" "\x01"
    (detail_of (with_detail {|\u0001|}));
  let rejected d =
    match Repro.of_lines (with_detail d) with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "lone high surrogate rejected" true (rejected {|\ud83d|});
  Alcotest.(check bool) "lone low surrogate rejected" true (rejected {|\ude00|});
  Alcotest.(check bool) "high surrogate + non-low rejected" true (rejected {|\ud83dA|});
  Alcotest.(check bool) "truncated hex rejected" true (rejected {|\u00|})

(* Property: serialization round-trips for adversarial detail strings
   — full byte range, embedded quotes, backslashes, newlines. *)
let prop_repro_roundtrip =
  QCheck.Test.make ~count:200 ~name:"repro save -> load -> save round-trip"
    QCheck.(pair small_string string)
    (fun (target, detail) ->
      let r =
        {
          sample_repro with
          Repro.plan = [ { Fault_plan.at = 7; target; action = Fault_plan.Kill } ];
          violations = [ { Invariant.v_invariant = "data-integrity"; v_detail = detail } ];
        }
      in
      match Repro.of_lines (Repro.to_lines r) with
      | Error _ -> false
      | Ok r' -> r' = r && Repro.to_lines r' = Repro.to_lines r)

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)
(* ------------------------------------------------------------------ *)

let report ?(completed = true) ?(checksum = true) ?(endpoints = true) ?(applied = 0)
    ?(expected_spans = 0) ?(recoveries = 0) ?(spans = Span.create ()) ?(degraded = [])
    ?(breakers = []) ?storm () =
  {
    Scenario.r_completed = completed;
    r_checksum_ok = checksum;
    r_endpoints_ok = endpoints;
    r_applied = applied;
    r_expected_spans = expected_spans;
    r_recoveries = recoveries;
    r_spans = spans;
    r_end_time = 1_000_000;
    r_decisions = [||];
    r_degraded = degraded;
    r_breakers = breakers;
    r_shape = 0L;
    r_storm = storm;
  }

let names vs = Invariant.names vs

let test_invariant_clean () =
  Alcotest.(check (list string)) "clean report has no violations" []
    (names (Invariant.check ~bound:1_000 (report ())))

let test_invariant_each () =
  Alcotest.(check (list string)) "deadlock" [ "no-deadlock" ]
    (names (Invariant.check ~bound:1_000 (report ~completed:false ())));
  Alcotest.(check (list string)) "checksum" [ "data-integrity" ]
    (names (Invariant.check ~bound:1_000 (report ~checksum:false ())));
  Alcotest.(check (list string)) "endpoints" [ "endpoint-consistency" ]
    (names (Invariant.check ~bound:1_000 (report ~endpoints:false ())));
  Alcotest.(check (list string)) "missing recovery" [ "span-completeness" ]
    (names (Invariant.check ~bound:1_000 (report ~applied:2 ~expected_spans:2 ~recoveries:1 ())))

let test_invariant_span_bound () =
  let spans = Span.create () in
  let s = Span.open_span spans ~component:"eth" ~defect:Status.D_exit ~repetition:1 ~now:100 in
  Span.close s ~now:5_000;
  let wide = report ~spans ~applied:1 ~expected_spans:1 ~recoveries:1 () in
  Alcotest.(check (list string)) "span wider than the bound" [ "span-completeness" ]
    (names (Invariant.check ~bound:1_000 wide));
  Alcotest.(check (list string)) "same span within a looser bound" []
    (names (Invariant.check ~bound:10_000 wide));
  let open_spans = Span.create () in
  ignore (Span.open_span open_spans ~component:"eth" ~defect:Status.D_exit ~repetition:1 ~now:100);
  Alcotest.(check (list string)) "never-closed span" [ "span-completeness" ]
    (names (Invariant.check ~bound:1_000 (report ~spans:open_spans ~recoveries:0 ())))

let test_same_failure () =
  let a = [ { Invariant.v_invariant = "no-deadlock"; v_detail = "x" } ] in
  let b = [ { Invariant.v_invariant = "no-deadlock"; v_detail = "completely different" } ] in
  let c = [ { Invariant.v_invariant = "data-integrity"; v_detail = "x" } ] in
  Alcotest.(check bool) "details are not identity" true (Invariant.same_failure a b);
  Alcotest.(check bool) "names are" false (Invariant.same_failure a c)

(* ------------------------------------------------------------------ *)
(* A toy scenario: a bare engine, no machine boot                      *)
(*                                                                     *)
(* Six same-instant events create choice points; the report fails      *)
(* data-integrity when the plan has >= 3 entries, and no-deadlock      *)
(* when the first tie-break picks candidate 2 — one plan-driven and    *)
(* one schedule-driven violation for the shrinker to minimize.         *)
(* ------------------------------------------------------------------ *)

let toy =
  let run ~seed ~policy ~plan =
    ignore seed;
    let engine = Engine.create ~policy () in
    let first = ref None in
    for i = 0 to 5 do
      ignore
        (Engine.schedule_at engine ~at:100 (fun () ->
             if !first = None then first := Some i))
    done;
    List.iter
      (fun e -> ignore (Engine.schedule_at engine ~at:e.Fault_plan.at (fun () -> ())))
      plan;
    Engine.run engine;
    let decisions = Engine.decisions engine in
    (* A toy shape: plan size + the first tie-break.  Deliberately
       coarse — like the real scenarios' recovery shapes, many runs
       collapse into one bucket, so fresh sampling saturates and only
       mutation (changing the plan length) reaches new buckets. *)
    let shape =
      Fnv.update_string
        (Fnv.update_string Fnv.start (string_of_int (List.length plan)))
        (if Array.length decisions = 0 then "-" else string_of_int decisions.(0))
    in
    {
      Scenario.r_completed = !first <> Some 2;
      r_checksum_ok = List.length plan < 3;
      r_endpoints_ok = true;
      r_applied = List.length plan;
      r_expected_spans = 0;
      r_recoveries = 0;
      r_spans = Span.create ();
      r_end_time = Engine.now engine;
      r_decisions = decisions;
      r_degraded = [];
      r_breakers = [];
      r_shape = shape;
      r_storm = None;
    }
  in
  Scenario.make ~name:"toy" ~targets:[ "toy" ] ~default_faults:4
    ~plan:(fun ~seed ~faults ->
      Fault_plan.generate ~seed ~targets:[ "toy" ] ~n:faults ~start:200 ~horizon:1_000 ())
    ~run ()

let test_explore_finds_and_is_jobs_invariant () =
  let outcome_key (o : Explore.outcome) =
    (o.Explore.o_index, o.Explore.o_seed, o.Explore.o_plan, Array.to_list o.Explore.o_decisions,
     o.Explore.o_violations)
  in
  let explore jobs = Explore.run ~jobs toy ~seed:11 ~runs:12 () in
  let r1 = explore 1 and r4 = explore 4 in
  Alcotest.(check bool) "the 4-entry default plan trips data-integrity" true
    (List.length r1.Explore.failures > 0);
  List.iter
    (fun (o : Explore.outcome) ->
      Alcotest.(check bool) "every failure names data-integrity" true
        (List.mem "data-integrity" (names o.Explore.o_violations)))
    r1.Explore.failures;
  Alcotest.(check bool) "identical findings for jobs=1 and jobs=4" true
    (List.map outcome_key r1.Explore.failures = List.map outcome_key r4.Explore.failures);
  let indices = List.map (fun o -> o.Explore.o_index) r1.Explore.failures in
  Alcotest.(check (list int)) "findings in run order" (List.sort compare indices) indices

let test_explore_crash_is_a_finding () =
  let crashing = { toy with Scenario.run = (fun ~seed ~policy ~plan ->
      ignore (seed, policy, plan);
      failwith "boom") }
  in
  let r = Explore.run ~jobs:2 crashing ~seed:3 ~runs:4 () in
  Alcotest.(check int) "every run is a finding" 4 (List.length r.Explore.failures);
  List.iter
    (fun (o : Explore.outcome) ->
      Alcotest.(check (list string)) "crash invariant" [ "scenario-crash" ]
        (names o.Explore.o_violations);
      Alcotest.(check int) "plan recovered from the seed" 4 (List.length o.Explore.o_plan))
    r.Explore.failures

let test_replay_reproduces () =
  let result = Explore.run ~jobs:1 toy ~seed:11 ~runs:12 () in
  match result.Explore.failures with
  | [] -> Alcotest.fail "expected findings"
  | first :: _ -> (
      let repro = Explore.to_repro result first in
      match Replay.run ~scenario:toy repro with
      | Error m -> Alcotest.fail m
      | Ok outcome ->
          Alcotest.(check bool) "replay reproduces the violation" true
            outcome.Replay.reproduced;
          Alcotest.(check bool) "replay observes identical violations" true
            (outcome.Replay.violations = first.Explore.o_violations))

let test_replay_unknown_scenario () =
  match Replay.run { sample_repro with Repro.scenario = "no-such" } with
  | Error m -> Alcotest.(check bool) "names the scenario" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "expected an error"

let test_shrink_minimizes_plan () =
  let result = Explore.run ~jobs:1 toy ~seed:11 ~runs:12 () in
  match result.Explore.failures with
  | [] -> Alcotest.fail "expected findings"
  | first :: _ -> (
      let repro = Explore.to_repro result first in
      match Replay.shrink ~scenario:toy repro with
      | Error m -> Alcotest.fail m
      | Ok min -> (
          Alcotest.(check int) "plan minimized to the violation threshold" 3
            (List.length min.Repro.plan);
          Alcotest.(check bool) "never larger than the input" true
            (List.length min.Repro.plan <= List.length repro.Repro.plan
            && Array.length min.Repro.decisions <= Array.length repro.Repro.decisions);
          Alcotest.(check (list string)) "same failure preserved"
            (names repro.Repro.violations) (names min.Repro.violations);
          (* The minimized repro still replays, and shrinking is a
             fixpoint. *)
          match Replay.run ~scenario:toy min with
          | Error m -> Alcotest.fail m
          | Ok outcome ->
              Alcotest.(check bool) "minimized repro reproduces" true outcome.Replay.reproduced;
              (match Replay.shrink ~scenario:toy min with
              | Error m -> Alcotest.fail m
              | Ok again ->
                  Alcotest.(check bool) "shrink of shrunk is identity" true
                    (again.Repro.plan = min.Repro.plan
                    && again.Repro.decisions = min.Repro.decisions))))

(* A schedule-driven violation: the failure only exists because a
   tie-break picked candidate 2, so shrinking may trim the trace but
   must keep that decision. *)
let test_shrink_preserves_divergent_decision () =
  let repro =
    {
      Repro.scenario = "toy";
      seed = 0;
      bound = 1_000;
      plan = Fault_plan.generate ~seed:1 ~targets:[ "toy" ] ~n:2 ~start:200 ~horizon:1_000 ();
      decisions = [| 2; 1; 1 |];
      violations = [ { Invariant.v_invariant = "no-deadlock"; v_detail = "seed" } ];
    }
  in
  match Replay.shrink ~scenario:toy repro with
  | Error m -> Alcotest.fail m
  | Ok min ->
      Alcotest.(check int) "plan entries are irrelevant and dropped" 0
        (List.length min.Repro.plan);
      Alcotest.(check (list int)) "only the divergent tie-break survives" [ 2 ]
        (Array.to_list min.Repro.decisions)

(* ------------------------------------------------------------------ *)
(* Coverage corpus                                                     *)
(* ------------------------------------------------------------------ *)

let sig_a = { Corpus.s_invariants = [ "data-integrity" ]; s_shape = 17L }

let test_corpus_keys () =
  Alcotest.(check string) "key is a pure function" (Corpus.key sig_a) (Corpus.key sig_a);
  Alcotest.(check int) "16 hex digits" 16 (String.length (Corpus.key sig_a));
  Alcotest.(check bool) "shape distinguishes" true
    (Corpus.key sig_a <> Corpus.key { sig_a with Corpus.s_shape = 18L });
  Alcotest.(check bool) "invariant set distinguishes" true
    (Corpus.key sig_a <> Corpus.key { sig_a with Corpus.s_invariants = [] });
  (* The 0x1f field separator prevents concatenation aliasing. *)
  Alcotest.(check bool) "no aliasing across field boundaries" true
    (Corpus.key { sig_a with Corpus.s_invariants = [ "ab"; "c" ] }
    <> Corpus.key { sig_a with Corpus.s_invariants = [ "a"; "bc" ] })

let test_corpus_dedup_and_order () =
  let c = Corpus.create () in
  Alcotest.(check bool) "first add is new" true (Corpus.add c ~key:"bb" sample_repro);
  Alcotest.(check bool) "second add is new" true (Corpus.add c ~key:"aa" sample_repro);
  Alcotest.(check bool) "duplicate key rejected" false (Corpus.add c ~key:"bb" sample_repro);
  Alcotest.(check int) "size counts unique keys" 2 (Corpus.size c);
  Alcotest.(check bool) "mem" true (Corpus.mem c "aa" && not (Corpus.mem c "zz"));
  Alcotest.(check (list string)) "entries sorted by key" [ "aa"; "bb" ]
    (List.map (fun e -> e.Corpus.c_key) (Corpus.entries c));
  Alcotest.(check (list string)) "keys sorted" [ "aa"; "bb" ] (Corpus.keys c)

let test_corpus_save_load () =
  let dir = Filename.temp_file "dst-corpus" "" in
  Sys.remove dir;
  let c = Corpus.create () in
  ignore (Corpus.add c ~key:"0123456789abcdef" sample_repro);
  ignore
    (Corpus.add c ~key:"fedcba9876543210" { sample_repro with Repro.seed = 9; decisions = [||] });
  Corpus.save c ~dir;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      match Corpus.load ~dir with
      | Error m -> Alcotest.fail m
      | Ok c' ->
          Alcotest.(check int) "every entry came back" (Corpus.size c) (Corpus.size c');
          Alcotest.(check bool) "keys and repros preserved" true
            (Corpus.entries c = Corpus.entries c');
          (* Each saved entry is itself a loadable repro file. *)
          (match Repro.load (Filename.concat dir "0123456789abcdef.jsonl") with
          | Ok r -> Alcotest.(check bool) "entry file is a plain repro" true (r = sample_repro)
          | Error m -> Alcotest.fail m));
  Alcotest.(check bool) "loading a missing dir fails" true
    (match Corpus.load ~dir:"/nonexistent-dst-corpus" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

let sorted_by_at p =
  let rec go = function
    | a :: (b :: _ as rest) -> a.Fault_plan.at <= b.Fault_plan.at && go rest
    | [ _ ] | [] -> true
  in
  go p

let test_mutate_plan () =
  let targets = [| "a"; "b" |] in
  let base = Fault_plan.generate ~seed:3 ~targets:[ "a" ] ~n:6 () in
  for i = 0 to 49 do
    let m = Mutate.plan (Rng.create ~seed:i) ~targets base in
    Alcotest.(check bool) "mutant stays time-sorted" true (sorted_by_at m);
    List.iter
      (fun e ->
        Alcotest.(check bool) "times stay non-negative" true (e.Fault_plan.at >= 0);
        Alcotest.(check bool) "targets stay in the scenario" true
          (Array.exists (( = ) e.Fault_plan.target) targets))
      m
  done;
  let m1 = Mutate.plan (Rng.create ~seed:5) ~targets base in
  let m2 = Mutate.plan (Rng.create ~seed:5) ~targets base in
  Alcotest.(check bool) "same rng state, same mutant" true (m1 = m2);
  Alcotest.(check int) "empty plan grows an entry" 1
    (List.length (Mutate.plan (Rng.create ~seed:1) ~targets []));
  Alcotest.(check bool) "no targets leaves the plan alone" true
    (Mutate.plan (Rng.create ~seed:1) ~targets:[||] base = base)

let test_mutate_splice () =
  let a = Fault_plan.generate ~seed:1 ~targets:[ "a" ] ~n:4 () in
  let b = Fault_plan.generate ~seed:2 ~targets:[ "b" ] ~n:4 () in
  for i = 0 to 19 do
    let s = Mutate.splice (Rng.create ~seed:i) a b in
    Alcotest.(check bool) "splice stays sorted" true (sorted_by_at s);
    List.iter
      (fun e ->
        Alcotest.(check bool) "every entry comes from a parent" true
          (List.mem e a || List.mem e b))
      s
  done;
  Alcotest.(check bool) "empty left returns right" true
    (Mutate.splice (Rng.create ~seed:1) [] b = b);
  Alcotest.(check bool) "empty right returns left" true
    (Mutate.splice (Rng.create ~seed:1) a [] = a)

let test_mutate_decisions () =
  let base = [| 0; 1; 2; 0; 1 |] in
  for i = 0 to 49 do
    let m = Mutate.decisions (Rng.create ~seed:i) base in
    (* Flip keeps the length, insert adds one, truncate only shortens. *)
    Alcotest.(check bool) "length grows by at most one" true
      (Array.length m <= Array.length base + 1);
    Array.iter (fun d -> Alcotest.(check bool) "values stay small" true (d >= 0 && d < 4)) m
  done;
  let m1 = Mutate.decisions (Rng.create ~seed:9) base in
  let m2 = Mutate.decisions (Rng.create ~seed:9) base in
  Alcotest.(check bool) "same rng state, same mutant" true (m1 = m2);
  Alcotest.(check int) "empty trace grows one tie-break" 1
    (Array.length (Mutate.decisions (Rng.create ~seed:1) [||]))

(* ------------------------------------------------------------------ *)
(* Guided exploration (toy scenario)                                   *)
(* ------------------------------------------------------------------ *)

let test_guided_deterministic_and_jobs_invariant () =
  let explore jobs = Explore.run_guided ~jobs ~batch:6 toy ~seed:11 ~runs:24 () in
  let g1 = explore 1 and g4 = explore 4 in
  Alcotest.(check string) "summary byte-identical for jobs=1 and jobs=4"
    (Explore.guided_summary g1) (Explore.guided_summary g4);
  Alcotest.(check (list string)) "signature keys identical" g1.Explore.g_signatures
    g4.Explore.g_signatures;
  Alcotest.(check string) "repeat run is byte-identical"
    (Explore.guided_summary g1)
    (Explore.guided_summary (explore 1));
  Alcotest.(check int) "every run is either fresh or a mutant" 24
    (g1.Explore.g_fresh + g1.Explore.g_mutants);
  Alcotest.(check bool) "mutation batches actually ran" true (g1.Explore.g_mutants > 0);
  Alcotest.(check bool) "corpus kept one entry per signature" true
    (Corpus.size g1.Explore.g_corpus >= List.length g1.Explore.g_signatures)

let test_guided_covers_at_least_blind () =
  let guided = Explore.run_guided ~jobs:1 ~batch:6 toy ~seed:11 ~runs:24 () in
  let blind = Explore.run_guided ~jobs:1 ~batch:6 ~fresh_only:true toy ~seed:11 ~runs:24 () in
  Alcotest.(check bool) "guided discovers at least as many signatures" true
    (List.length guided.Explore.g_signatures >= List.length blind.Explore.g_signatures);
  Alcotest.(check int) "fresh_only never mutates" 0 blind.Explore.g_mutants

(* fresh_only guided runs execute exactly blind mode's specs, so each
   deduplicated finding must be one of Explore.run's findings,
   verbatim. *)
let test_guided_fresh_only_matches_blind () =
  let g = Explore.run_guided ~jobs:1 ~batch:6 ~fresh_only:true toy ~seed:11 ~runs:24 () in
  let blind = Explore.run ~jobs:1 toy ~seed:11 ~runs:24 () in
  Alcotest.(check bool) "both modes found failures" true
    (g.Explore.g_failing <> [] && blind.Explore.failures <> []);
  List.iter
    (fun (_, (o : Explore.outcome)) ->
      Alcotest.(check bool)
        (Printf.sprintf "finding at run %d matches blind exploration" o.Explore.o_index)
        true
        (List.exists
           (fun (b : Explore.outcome) ->
             b.Explore.o_index = o.Explore.o_index
             && b.Explore.o_seed = o.Explore.o_seed
             && b.Explore.o_plan = o.Explore.o_plan
             && b.Explore.o_decisions = o.Explore.o_decisions
             && b.Explore.o_violations = o.Explore.o_violations)
           blind.Explore.failures))
    g.Explore.g_failing

let test_guided_findings_replay () =
  let g = Explore.run_guided ~jobs:1 ~batch:6 toy ~seed:11 ~runs:24 () in
  List.iter
    (fun (_, (o : Explore.outcome)) ->
      match Replay.run ~scenario:toy (Explore.guided_to_repro g o) with
      | Error m -> Alcotest.fail m
      | Ok outcome ->
          Alcotest.(check bool)
            (Printf.sprintf "guided finding at run %d replays" o.Explore.o_index)
            true outcome.Replay.reproduced)
    g.Explore.g_failing

let test_trim_trailing_zeros () =
  Alcotest.(check (list int)) "trims" [ 1; 0; 2 ]
    (Array.to_list (Replay.trim_trailing_zeros [| 1; 0; 2; 0; 0 |]));
  Alcotest.(check (list int)) "all zeros" []
    (Array.to_list (Replay.trim_trailing_zeros [| 0; 0 |]));
  Alcotest.(check (list int)) "empty" [] (Array.to_list (Replay.trim_trailing_zeros [||]))

let tests =
  [
    Alcotest.test_case "fault plan is pure and sorted" `Quick test_plan_pure_and_sorted;
    Alcotest.test_case "fault plan inject probability" `Quick test_plan_inject_prob;
    Alcotest.test_case "fault plan rejects bad args" `Quick test_plan_invalid_args;
    Alcotest.test_case "repro line round-trip" `Quick test_repro_roundtrip;
    Alcotest.test_case "repro file round-trip" `Quick test_repro_file_roundtrip;
    Alcotest.test_case "repro rejects garbage" `Quick test_repro_rejects_garbage;
    Alcotest.test_case "repro unicode escapes" `Quick test_repro_unicode_escapes;
    QCheck_alcotest.to_alcotest prop_repro_roundtrip;
    Alcotest.test_case "invariants: clean report" `Quick test_invariant_clean;
    Alcotest.test_case "invariants: each violation" `Quick test_invariant_each;
    Alcotest.test_case "invariants: span bound" `Quick test_invariant_span_bound;
    Alcotest.test_case "failure identity" `Quick test_same_failure;
    Alcotest.test_case "explore finds, jobs-invariant" `Quick
      test_explore_finds_and_is_jobs_invariant;
    Alcotest.test_case "explore treats crashes as findings" `Quick test_explore_crash_is_a_finding;
    Alcotest.test_case "replay reproduces" `Quick test_replay_reproduces;
    Alcotest.test_case "replay rejects unknown scenario" `Quick test_replay_unknown_scenario;
    Alcotest.test_case "shrink minimizes the plan" `Quick test_shrink_minimizes_plan;
    Alcotest.test_case "shrink preserves divergent decisions" `Quick
      test_shrink_preserves_divergent_decision;
    Alcotest.test_case "trim trailing zeros" `Quick test_trim_trailing_zeros;
    Alcotest.test_case "corpus signature keys" `Quick test_corpus_keys;
    Alcotest.test_case "corpus dedups and sorts" `Quick test_corpus_dedup_and_order;
    Alcotest.test_case "corpus save/load round-trip" `Quick test_corpus_save_load;
    Alcotest.test_case "mutate: fault plans" `Quick test_mutate_plan;
    Alcotest.test_case "mutate: splice" `Quick test_mutate_splice;
    Alcotest.test_case "mutate: decision traces" `Quick test_mutate_decisions;
    Alcotest.test_case "guided: deterministic, jobs-invariant" `Quick
      test_guided_deterministic_and_jobs_invariant;
    Alcotest.test_case "guided: covers at least blind" `Quick test_guided_covers_at_least_blind;
    Alcotest.test_case "guided: fresh-only matches blind" `Quick
      test_guided_fresh_only_matches_blind;
    Alcotest.test_case "guided: findings replay" `Quick test_guided_findings_replay;
  ]
