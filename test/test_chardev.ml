(* Character-device recovery semantics (Sec. 6.3, Fig. 6): errors are
   pushed to the application layer; recovery-aware applications
   continue, and the CD burner case must fail loudly. *)

module System = Resilix_system.System
module Engine = Resilix_sim.Engine
module Audio_dev = Resilix_hw.Audio_dev
module Printer_dev = Resilix_hw.Printer_dev
module Cd_dev = Resilix_hw.Cd_dev
module Reincarnation = Resilix_core.Reincarnation
module Mp3 = Resilix_apps.Mp3_player
module Lpd = Resilix_apps.Lpd
module Cdburn = Resilix_apps.Cdburn

let boot () = System.boot ~opts:{ System.default_opts with System.disk_mb = 8 } ()

let test_mp3_clean () =
  let t = boot () in
  System.start_services t [ System.spec_audio () ];
  let result = Mp3.fresh_result () in
  ignore (System.spawn_app t ~name:"mp3" (Mp3.make ~song_bytes:100_000 result));
  let finished = System.run_until t ~timeout:60_000_000 (fun () -> result.Mp3.finished) in
  Alcotest.(check bool) "player finished" true finished;
  Alcotest.(check bool) "song completed" true result.Mp3.completed;
  Alcotest.(check int) "no recoveries needed" 0 result.Mp3.recoveries

let test_mp3_recovers_with_hiccup () =
  let t = boot () in
  System.start_services t [ System.spec_audio () ];
  let result = Mp3.fresh_result () in
  ignore (System.spawn_app t ~name:"mp3" (Mp3.make ~song_bytes:200_000 result));
  ignore
    (Engine.schedule t.System.engine ~after:400_000 (fun () ->
         ignore (System.kill_service_once t ~target:"chr.audio")));
  let finished = System.run_until t ~timeout:120_000_000 (fun () -> result.Mp3.finished) in
  Alcotest.(check bool) "player finished" true finished;
  Alcotest.(check bool) "song completed despite the crash" true result.Mp3.completed;
  Alcotest.(check bool) "player had to recover" true (result.Mp3.recoveries >= 1);
  Alcotest.(check int) "driver was reincarnated" 1
    (Reincarnation.restarts_of t.System.rs "chr.audio");
  (* The listener heard it: buffered samples died with the driver. *)
  Alcotest.(check bool) "hiccup occurred (underruns)" true
    (Audio_dev.underruns t.System.audio >= 1)

let test_mp3_legacy_gives_up () =
  let t = boot () in
  System.start_services t [ System.spec_audio () ];
  let result = Mp3.fresh_result () in
  ignore
    (System.spawn_app t ~name:"mp3-legacy"
       (Mp3.make ~song_bytes:200_000 ~recovery_aware:false result));
  ignore
    (Engine.schedule t.System.engine ~after:400_000 (fun () ->
         ignore (System.kill_service_once t ~target:"chr.audio")));
  let finished = System.run_until t ~timeout:120_000_000 (fun () -> result.Mp3.finished) in
  Alcotest.(check bool) "player finished" true finished;
  Alcotest.(check bool) "legacy player aborted" true result.Mp3.gave_up;
  Alcotest.(check bool) "song did not complete" false result.Mp3.completed

let test_lpd_duplicates_but_completes () =
  let t = boot () in
  System.start_services t [ System.spec_printer () ];
  let job = String.init 30_000 (fun i -> Char.chr (65 + (i mod 26))) in
  let result = Lpd.fresh_result () in
  ignore (System.spawn_app t ~name:"lpd" (Lpd.make ~jobs:[ job ] result));
  ignore
    (Engine.schedule t.System.engine ~after:300_000 (fun () ->
         ignore (System.kill_service_once t ~target:"chr.printer")));
  let finished = System.run_until t ~timeout:120_000_000 (fun () -> result.Lpd.finished) in
  Alcotest.(check bool) "spooler finished" true finished;
  Alcotest.(check int) "job eventually printed" 1 result.Lpd.jobs_done;
  Alcotest.(check bool) "job was reissued" true (result.Lpd.resubmissions >= 1);
  (* Let the printer drain, then inspect the paper trail. *)
  System.run t ~until:(Engine.now t.System.engine + 3_000_000);
  let printed = Printer_dev.printed t.System.printer in
  let contains_suffix_of_job s =
    (* The tail of the job must appear in full — the job completed. *)
    let tail = String.sub job (String.length job - 1000) 1000 in
    let rec scan i =
      i + 1000 <= String.length s && (String.sub s i 1000 = tail || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "job tail was printed" true (contains_suffix_of_job printed);
  Alcotest.(check bool) "duplicate output happened (reissue is not transparent)" true
    (String.length printed > String.length job)

let test_cd_burn_clean () =
  let t = boot () in
  System.start_services t [ System.spec_cd () ];
  let data = String.init 100_000 (fun i -> Char.chr (i land 0xFF)) in
  let result = Cdburn.fresh_result () in
  ignore (System.spawn_app t ~name:"cdburn" (Cdburn.make ~data result));
  let finished = System.run_until t ~timeout:60_000_000 (fun () -> result.Cdburn.finished) in
  Alcotest.(check bool) "burn finished" true finished;
  Alcotest.(check bool) "burn succeeded" true result.Cdburn.success;
  (match Cd_dev.disc t.System.cd with
  | Cd_dev.Complete -> ()
  | _ -> Alcotest.fail "disc should be complete");
  Alcotest.(check string) "burned image matches" data (Cd_dev.burned t.System.cd)

let test_cd_burn_ruined_by_crash () =
  let t = boot () in
  System.start_services t [ System.spec_cd () ];
  let data = String.init 400_000 (fun i -> Char.chr (i land 0xFF)) in
  let result = Cdburn.fresh_result () in
  ignore (System.spawn_app t ~name:"cdburn" (Cdburn.make ~data result));
  ignore
    (Engine.schedule t.System.engine ~after:20_000 (fun () ->
         ignore (System.kill_service_once t ~target:"chr.cd")));
  let finished = System.run_until t ~timeout:60_000_000 (fun () -> result.Cdburn.finished) in
  Alcotest.(check bool) "burn finished" true finished;
  Alcotest.(check bool) "burn failed" false result.Cdburn.success;
  Alcotest.(check bool) "error was reported to the user" true result.Cdburn.error_reported;
  (* The gap watchdog ruins the disc shortly after the laser stopped. *)
  System.run t ~until:(Engine.now t.System.engine + 2_000_000);
  match Cd_dev.disc t.System.cd with
  | Cd_dev.Ruined -> ()
  | Cd_dev.Blank -> Alcotest.fail "disc should be ruined, is blank"
  | Cd_dev.In_session -> Alcotest.fail "disc should be ruined, still in session"
  | Cd_dev.Complete -> Alcotest.fail "disc should be ruined, claims complete"

let tests =
  [
    Alcotest.test_case "mp3 player (no faults)" `Quick test_mp3_clean;
    Alcotest.test_case "mp3 recovers with hiccup" `Quick test_mp3_recovers_with_hiccup;
    Alcotest.test_case "legacy mp3 gives up" `Quick test_mp3_legacy_gives_up;
    Alcotest.test_case "lpd reissues, duplicates possible" `Quick test_lpd_duplicates_but_completes;
    Alcotest.test_case "cd burn (no faults)" `Quick test_cd_burn_clean;
    Alcotest.test_case "cd burn ruined by driver crash" `Quick test_cd_burn_ruined_by_crash;
  ]
