(* Tests for lib/checksum: known-answer vectors plus streaming/one-shot
   equivalence properties. *)

module Md5 = Resilix_checksum.Md5
module Sha1 = Resilix_checksum.Sha1
module Crc32 = Resilix_checksum.Crc32
module Fnv = Resilix_checksum.Fnv

let check_md5 input expected () = Alcotest.(check string) input expected (Md5.digest_string input)

let check_sha1 input expected () =
  Alcotest.(check string) input expected (Sha1.digest_string input)

let md5_vectors =
  [
    ("", "d41d8cd98f00b204e9800998ecf8427e");
    ("a", "0cc175b9c0f1b6a831c399e269772661");
    ("abc", "900150983cd24fb0d6963f7d28e17f72");
    ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
    ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
    ( "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
      "d174ab98d277d9f5a5611c2c9f419d9f" );
    ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
      "57edf4a22be3c955ac49da2e2107b67a" );
  ]

let sha1_vectors =
  [
    ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1" );
  ]

let test_sha1_million () =
  (* FIPS 180-1 appendix: one million 'a's. *)
  let ctx = Sha1.init () in
  let chunk = Bytes.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha1.update ctx chunk ~off:0 ~len:1000
  done;
  Alcotest.(check string)
    "sha1 of 1M a's" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.hex (Sha1.finalize ctx))

let test_crc32_vectors () =
  Alcotest.(check int) "crc32 of empty" 0 (Crc32.string "");
  Alcotest.(check int) "crc32 of '123456789'" 0xCBF43926 (Crc32.string "123456789")

let test_fnv_vectors () =
  (* Published FNV-1a 64-bit values. *)
  Alcotest.(check string) "fnv of empty" "cbf29ce484222325" (Fnv.to_hex (Fnv.string ""));
  Alcotest.(check string) "fnv of 'a'" "af63dc4c8601ec8c" (Fnv.to_hex (Fnv.string "a"));
  Alcotest.(check string) "fnv of 'foobar'" "85944171f73967e8" (Fnv.to_hex (Fnv.string "foobar"))

(* Property: splitting the input into arbitrary chunks does not change
   any digest — this is exactly how the dd/wget examples stream data. *)

let random_chunks =
  QCheck.Gen.(
    let* body = string_size (int_bound 600) in
    let* cuts = list_size (int_bound 8) (int_bound (max 1 (String.length body))) in
    QCheck.Gen.return (body, List.sort_uniq compare cuts))

let split_at_cuts body cuts =
  let n = String.length body in
  let points = List.filter (fun c -> c > 0 && c < n) cuts in
  let rec pieces start = function
    | [] -> [ String.sub body start (n - start) ]
    | c :: rest -> String.sub body start (c - start) :: pieces c rest
  in
  pieces 0 points

let prop_streaming_md5 =
  QCheck.Test.make ~name:"md5 streaming = one-shot" ~count:200
    (QCheck.make random_chunks)
    (fun (body, cuts) ->
      let ctx = Md5.init () in
      List.iter (Md5.update_string ctx) (split_at_cuts body cuts);
      Md5.hex (Md5.finalize ctx) = Md5.digest_string body)

let prop_streaming_sha1 =
  QCheck.Test.make ~name:"sha1 streaming = one-shot" ~count:200
    (QCheck.make random_chunks)
    (fun (body, cuts) ->
      let ctx = Sha1.init () in
      List.iter (Sha1.update_string ctx) (split_at_cuts body cuts);
      Sha1.hex (Sha1.finalize ctx) = Sha1.digest_string body)

let prop_streaming_crc =
  QCheck.Test.make ~name:"crc32 streaming = one-shot" ~count:200
    (QCheck.make random_chunks)
    (fun (body, cuts) ->
      let c =
        List.fold_left (fun acc s -> Crc32.update_string acc s) Crc32.start
          (split_at_cuts body cuts)
      in
      Crc32.finish c = Crc32.string body)

let prop_streaming_fnv =
  QCheck.Test.make ~name:"fnv streaming = one-shot" ~count:200
    (QCheck.make random_chunks)
    (fun (body, cuts) ->
      let h =
        List.fold_left (fun acc s -> Fnv.update_string acc s) Fnv.start (split_at_cuts body cuts)
      in
      h = Fnv.string body)

let prop_md5_injective_smoke =
  QCheck.Test.make ~name:"md5 distinguishes distinct short strings" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_bound 40)) (string_of_size (QCheck.Gen.int_bound 40)))
    (fun (a, b) -> a = b || Md5.digest_string a <> Md5.digest_string b)

let tests =
  List.mapi
    (fun i (input, expected) ->
      Alcotest.test_case (Printf.sprintf "md5 vector %d" i) `Quick (check_md5 input expected))
    md5_vectors
  @ List.mapi
      (fun i (input, expected) ->
        Alcotest.test_case (Printf.sprintf "sha1 vector %d" i) `Quick (check_sha1 input expected))
      sha1_vectors
  @ [
      Alcotest.test_case "sha1 one million a's" `Slow test_sha1_million;
      Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
      Alcotest.test_case "fnv-1a vectors" `Quick test_fnv_vectors;
      QCheck_alcotest.to_alcotest prop_streaming_md5;
      QCheck_alcotest.to_alcotest prop_streaming_sha1;
      QCheck_alcotest.to_alcotest prop_streaming_crc;
      QCheck_alcotest.to_alcotest prop_streaming_fnv;
      QCheck_alcotest.to_alcotest prop_md5_injective_smoke;
    ]
