(* Tests for lib/sim: event ordering, cancellation, determinism of the
   RNG, trace querying, and heap properties. *)

module Engine = Resilix_sim.Engine
module Time = Resilix_sim.Time
module Heap = Resilix_sim.Heap
module Rng = Resilix_sim.Rng
module Trace = Resilix_sim.Trace

let test_event_ordering () =
  let engine = Engine.create () in
  let order = ref [] in
  let mark tag () = order := tag :: !order in
  ignore (Engine.schedule engine ~after:(Time.usec 30) (mark "c"));
  ignore (Engine.schedule engine ~after:(Time.usec 10) (mark "a"));
  ignore (Engine.schedule engine ~after:(Time.usec 20) (mark "b"));
  Engine.run engine;
  Alcotest.(check (list string)) "fires by time" [ "a"; "b"; "c" ] (List.rev !order);
  Alcotest.(check int) "clock at last event" 30 (Engine.now engine)

let test_fifo_ties () =
  let engine = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule engine ~after:(Time.usec 5) (fun () -> order := i :: !order))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "same-time events fire FIFO" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule engine ~after:(Time.usec 10) (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run engine;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_run_until () =
  let engine = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule engine ~after:(Time.msec 1) (fun () -> incr fired));
  ignore (Engine.schedule engine ~after:(Time.msec 5) (fun () -> incr fired));
  Engine.run engine ~until:(Time.msec 2);
  Alcotest.(check int) "only events before the bound" 1 !fired;
  Alcotest.(check int) "clock advanced exactly to bound" (Time.msec 2) (Engine.now engine);
  Engine.run engine;
  Alcotest.(check int) "remaining events fire later" 2 !fired

let test_nested_schedule () =
  let engine = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule engine ~after:(Time.usec 10) (fun () ->
         times := Engine.now engine :: !times;
         ignore
           (Engine.schedule engine ~after:(Time.usec 7) (fun () ->
                times := Engine.now engine :: !times))));
  Engine.run engine;
  Alcotest.(check (list int)) "events may schedule events" [ 10; 17 ] (List.rev !times)

let test_schedule_past_rejected () =
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~after:(Time.usec 10) (fun () -> ()));
  Engine.run engine;
  Alcotest.check_raises "scheduling in the past fails" (Invalid_argument "dummy")
    (fun () ->
      try ignore (Engine.schedule_at engine ~at:(Time.usec 5) (fun () -> ())) with
      | Invalid_argument _ -> raise (Invalid_argument "dummy"))

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let seq_a = List.init 100 (fun _ -> Rng.int a 1000) in
  let seq_b = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" seq_a seq_b;
  let c = Rng.create ~seed:43 in
  let seq_c = List.init 100 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (seq_a <> seq_c)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:7 in
  let child = Rng.split parent in
  let seq_child = List.init 50 (fun _ -> Rng.int child 100) in
  let seq_parent = List.init 50 (fun _ -> Rng.int parent 100) in
  Alcotest.(check bool) "split streams differ" true (seq_child <> seq_parent)

(* Hierarchical seeding: derive is a pure function of (seed, index),
   so a child stream cannot depend on how many siblings exist or in
   which order they are derived — the property the campaign runner's
   per-trial seeding rests on. *)
let test_rng_derive_order_independent () =
  let forward = List.init 20 (fun i -> Rng.derive ~seed:42 ~index:i) in
  let backward = List.rev (List.init 20 (fun i -> Rng.derive ~seed:42 ~index:(19 - i))) in
  Alcotest.(check (list int)) "derivation order is irrelevant" forward backward;
  (* Deriving fewer or more siblings changes nothing for index 3. *)
  let alone = Rng.derive ~seed:42 ~index:3 in
  Alcotest.(check int) "sibling count is irrelevant" (List.nth forward 3) alone

let test_rng_derive_streams_independent () =
  (* Child streams pairwise differ, and differ from the parent's own
     stream. *)
  let stream_of seed =
    let r = Rng.create ~seed in
    List.init 20 (fun _ -> Rng.int r 1_000_000)
  in
  let parent = stream_of 42 in
  let children = List.init 8 (fun i -> stream_of (Rng.derive ~seed:42 ~index:i)) in
  List.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "child %d differs from parent" i) true (c <> parent))
    children;
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "children %d and %d differ" i j)
              true (a <> b))
        children)
    children;
  (* No collisions among a large block of derived seeds. *)
  let seen = Hashtbl.create 4096 in
  for i = 0 to 4095 do
    Hashtbl.replace seen (Rng.derive ~seed:7 ~index:i) ()
  done;
  Alcotest.(check int) "4096 derived seeds, no collision" 4096 (Hashtbl.length seen);
  Alcotest.check_raises "negative index rejected" (Invalid_argument "Rng.derive: negative index")
    (fun () -> ignore (Rng.derive ~seed:1 ~index:(-1)))

let test_trace_query () =
  let trace = Trace.create () in
  Trace.emit trace ~now:(Time.usec 5) Trace.Info "rs" "restarting %s (attempt %d)" "eth" 2;
  Trace.emit trace ~now:(Time.usec 9) Trace.Warn "inet" "driver %s down" "eth";
  Alcotest.(check int) "count matches" 1 (Trace.count trace ~subsystem:"rs" ~contains:"restarting");
  (match Trace.find trace ~subsystem:"rs" ~contains:"attempt 2" with
  | Some e -> Alcotest.(check int) "event time preserved" 5 e.Trace.time
  | None -> Alcotest.fail "expected to find the rs event");
  Alcotest.(check int) "no cross-subsystem match" 0
    (Trace.count trace ~subsystem:"rs" ~contains:"driver eth down")

let test_trace_capacity () =
  let trace = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.emit trace ~now:(Time.usec i) Trace.Debug "x" "event %d" i
  done;
  let evs = Trace.events trace in
  Alcotest.(check int) "bounded retention" 3 (List.length evs);
  Alcotest.(check string) "oldest dropped" "event 3" (Trace.message (List.hd evs))

(* Property: popping the heap yields keys in nondecreasing order, with
   FIFO sequence order inside equal keys. *)
let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted by (key, seq)" ~count:300
    QCheck.(list (int_bound 50))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun seq key -> Heap.push h ~key ~seq key) keys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (k, s, _) -> drain ((k, s) :: acc)
      in
      let out = drain [] in
      let rec ordered = function
        | (k1, s1) :: ((k2, s2) :: _ as rest) ->
            (k1 < k2 || (k1 = k2 && s1 < s2)) && ordered rest
        | [ _ ] | [] -> true
      in
      List.length out = List.length keys && ordered out)

let prop_engine_no_time_travel =
  QCheck.Test.make ~name:"engine clock is monotone" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 30) (int_bound 1000))
    (fun delays ->
      let engine = Engine.create () in
      let monotone = ref true in
      let last = ref 0 in
      List.iter
        (fun d ->
          ignore
            (Engine.schedule engine ~after:d (fun () ->
                 if Engine.now engine < !last then monotone := false;
                 last := Engine.now engine)))
        delays;
      Engine.run engine;
      !monotone)

let tests =
  [
    Alcotest.test_case "event ordering" `Quick test_event_ordering;
    Alcotest.test_case "FIFO tie-breaking" `Quick test_fifo_ties;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "run ~until" `Quick test_run_until;
    Alcotest.test_case "nested scheduling" `Quick test_nested_schedule;
    Alcotest.test_case "no scheduling in the past" `Quick test_schedule_past_rejected;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng derive is order/sibling independent" `Quick
      test_rng_derive_order_independent;
    Alcotest.test_case "rng derived streams independent" `Quick
      test_rng_derive_streams_independent;
    Alcotest.test_case "trace query" `Quick test_trace_query;
    Alcotest.test_case "trace capacity bound" `Quick test_trace_capacity;
    QCheck_alcotest.to_alcotest prop_heap_sorted;
    QCheck_alcotest.to_alcotest prop_engine_no_time_travel;
  ]
