(* Tests for lib/sim: event ordering, cancellation, determinism of the
   RNG, trace querying, and heap properties. *)

module Engine = Resilix_sim.Engine
module Time = Resilix_sim.Time
module Heap = Resilix_sim.Heap
module Rng = Resilix_sim.Rng
module Trace = Resilix_sim.Trace

let test_event_ordering () =
  let engine = Engine.create () in
  let order = ref [] in
  let mark tag () = order := tag :: !order in
  ignore (Engine.schedule engine ~after:(Time.usec 30) (mark "c"));
  ignore (Engine.schedule engine ~after:(Time.usec 10) (mark "a"));
  ignore (Engine.schedule engine ~after:(Time.usec 20) (mark "b"));
  Engine.run engine;
  Alcotest.(check (list string)) "fires by time" [ "a"; "b"; "c" ] (List.rev !order);
  Alcotest.(check int) "clock at last event" 30 (Engine.now engine)

let test_fifo_ties () =
  let engine = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule engine ~after:(Time.usec 5) (fun () -> order := i :: !order))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "same-time events fire FIFO" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule engine ~after:(Time.usec 10) (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run engine;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_run_until () =
  let engine = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule engine ~after:(Time.msec 1) (fun () -> incr fired));
  ignore (Engine.schedule engine ~after:(Time.msec 5) (fun () -> incr fired));
  Engine.run engine ~until:(Time.msec 2);
  Alcotest.(check int) "only events before the bound" 1 !fired;
  Alcotest.(check int) "clock advanced exactly to bound" (Time.msec 2) (Engine.now engine);
  Engine.run engine;
  Alcotest.(check int) "remaining events fire later" 2 !fired

(* Cancellation edge cases: a handle stays inert after its event has
   fired, and cancelling twice is as harmless as cancelling once. *)
let test_cancel_edge_cases () =
  let engine = Engine.create () in
  let fired = ref 0 in
  let h = Engine.schedule engine ~after:(Time.usec 10) (fun () -> incr fired) in
  Engine.run engine;
  Alcotest.(check int) "event fired" 1 !fired;
  Engine.cancel h;
  Engine.cancel h;
  ignore (Engine.schedule engine ~after:(Time.usec 10) (fun () -> incr fired));
  Engine.run engine;
  Alcotest.(check int) "cancel after firing cannot reach later events" 2 !fired;
  let h2 = Engine.schedule engine ~after:(Time.usec 10) (fun () -> incr fired) in
  Engine.cancel h2;
  Engine.cancel h2;
  Engine.run engine;
  Alcotest.(check int) "double-cancel is a single cancel" 2 !fired

(* [run ~until] leaves the clock exactly at the bound — whether the
   queue still holds later events, is empty, or never had any. *)
let test_run_until_exact_clock () =
  let engine = Engine.create () in
  Engine.run engine ~until:(Time.usec 70);
  Alcotest.(check int) "empty queue still advances to the bound" 70 (Engine.now engine);
  ignore (Engine.schedule engine ~after:(Time.usec 5) (fun () -> ()));
  Engine.run engine ~until:(Time.usec 100);
  Alcotest.(check int) "drained queue advances to the bound" 100 (Engine.now engine);
  ignore (Engine.schedule engine ~after:(Time.usec 50) (fun () -> ()));
  Engine.run engine ~until:(Time.usec 120);
  Alcotest.(check int) "later events do not pull the clock past" 120 (Engine.now engine);
  Alcotest.(check int) "the late event is still pending" 1 (Engine.pending engine)

let test_nested_schedule () =
  let engine = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule engine ~after:(Time.usec 10) (fun () ->
         times := Engine.now engine :: !times;
         ignore
           (Engine.schedule engine ~after:(Time.usec 7) (fun () ->
                times := Engine.now engine :: !times))));
  Engine.run engine;
  Alcotest.(check (list int)) "events may schedule events" [ 10; 17 ] (List.rev !times)

let test_schedule_past_rejected () =
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~after:(Time.usec 10) (fun () -> ()));
  Engine.run engine;
  Alcotest.check_raises "scheduling in the past fails" (Invalid_argument "dummy")
    (fun () ->
      try ignore (Engine.schedule_at engine ~at:(Time.usec 5) (fun () -> ())) with
      | Invalid_argument _ -> raise (Invalid_argument "dummy"))

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let seq_a = List.init 100 (fun _ -> Rng.int a 1000) in
  let seq_b = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" seq_a seq_b;
  let c = Rng.create ~seed:43 in
  let seq_c = List.init 100 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (seq_a <> seq_c)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:7 in
  let child = Rng.split parent in
  let seq_child = List.init 50 (fun _ -> Rng.int child 100) in
  let seq_parent = List.init 50 (fun _ -> Rng.int parent 100) in
  Alcotest.(check bool) "split streams differ" true (seq_child <> seq_parent)

(* Hierarchical seeding: derive is a pure function of (seed, index),
   so a child stream cannot depend on how many siblings exist or in
   which order they are derived — the property the campaign runner's
   per-trial seeding rests on. *)
let test_rng_derive_order_independent () =
  let forward = List.init 20 (fun i -> Rng.derive ~seed:42 ~index:i) in
  let backward = List.rev (List.init 20 (fun i -> Rng.derive ~seed:42 ~index:(19 - i))) in
  Alcotest.(check (list int)) "derivation order is irrelevant" forward backward;
  (* Deriving fewer or more siblings changes nothing for index 3. *)
  let alone = Rng.derive ~seed:42 ~index:3 in
  Alcotest.(check int) "sibling count is irrelevant" (List.nth forward 3) alone

let test_rng_derive_streams_independent () =
  (* Child streams pairwise differ, and differ from the parent's own
     stream. *)
  let stream_of seed =
    let r = Rng.create ~seed in
    List.init 20 (fun _ -> Rng.int r 1_000_000)
  in
  let parent = stream_of 42 in
  let children = List.init 8 (fun i -> stream_of (Rng.derive ~seed:42 ~index:i)) in
  List.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "child %d differs from parent" i) true (c <> parent))
    children;
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "children %d and %d differ" i j)
              true (a <> b))
        children)
    children;
  (* No collisions among a large block of derived seeds. *)
  let seen = Hashtbl.create 4096 in
  for i = 0 to 4095 do
    Hashtbl.replace seen (Rng.derive ~seed:7 ~index:i) ()
  done;
  Alcotest.(check int) "4096 derived seeds, no collision" 4096 (Hashtbl.length seen);
  Alcotest.check_raises "negative index rejected" (Invalid_argument "Rng.derive: negative index")
    (fun () -> ignore (Rng.derive ~seed:1 ~index:(-1)))

(* The DST explorer seeds run [i] with [derive ~seed ~index:i]: no
   collisions may exist among the (seed, index) pairs it uses —
   adjacent indices, and indices far apart. *)
let test_rng_derive_collision_free () =
  List.iter
    (fun seed ->
      for i = 0 to 63 do
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: children %d and %d differ" seed i (i + 1))
          true
          (Rng.derive ~seed ~index:i <> Rng.derive ~seed ~index:(i + 1))
      done)
    [ 0; 1; 42; 7; max_int ];
  let far = [ 0; 1; 1000; 1_000_000; 1 lsl 30; 1 lsl 40; 1 lsl 60 ] in
  let children = List.map (fun i -> Rng.derive ~seed:7 ~index:i) far in
  Alcotest.(check int)
    "distant indices stay collision-free"
    (List.length far)
    (List.length (List.sort_uniq compare children))

(* Child seeds are part of the repro-file contract: a repro records
   the derived seed, so derive must never change across refactors.
   These values pin the current splitmix64 derivation. *)
let test_rng_derive_stability () =
  let pins =
    [
      (42, 0, 1773080229305530473);
      (42, 1, 2958219263312191191);
      (42, 2, 3069497704473277141);
      (7, 1_000_000, 4535786310112445390);
      (7, 1 lsl 40, 834295082196018886);
    ]
  in
  List.iter
    (fun (seed, index, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "derive ~seed:%d ~index:%d" seed index)
        expected (Rng.derive ~seed ~index))
    pins

(* ------------------------------------------------------------------ *)
(* Tie-break policies and the decision trace                           *)
(* ------------------------------------------------------------------ *)

let firing_order policy =
  let engine = Engine.create ~policy () in
  let order = ref [] in
  for i = 1 to 6 do
    ignore (Engine.schedule engine ~after:(Time.usec 5) (fun () -> order := i :: !order))
  done;
  Engine.run engine;
  (List.rev !order, Engine.decisions engine)

let test_policy_fifo_records_nothing () =
  let order, decisions = firing_order Engine.Fifo in
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4; 5; 6 ] order;
  Alcotest.(check int) "FIFO records no decisions" 0 (Array.length decisions)

let test_policy_seeded_permutation () =
  let order_a, decisions = firing_order (Engine.Seeded 9) in
  let order_b, _ = firing_order (Engine.Seeded 9) in
  Alcotest.(check (list int)) "same seed, same schedule" order_a order_b;
  Alcotest.(check (list int))
    "a permutation of the same events"
    [ 1; 2; 3; 4; 5; 6 ]
    (List.sort compare order_a);
  Alcotest.(check bool) "choice points were recorded" true (Array.length decisions > 0);
  (* Different seeds must be able to produce different schedules. *)
  let distinct =
    List.sort_uniq compare (List.init 16 (fun s -> fst (firing_order (Engine.Seeded s))))
  in
  Alcotest.(check bool) "seeds explore multiple schedules" true (List.length distinct > 1)

let test_policy_scripted_replays () =
  let order, decisions = firing_order (Engine.Seeded 9) in
  let replayed, rerecorded = firing_order (Engine.Scripted decisions) in
  Alcotest.(check (list int)) "scripted replay reproduces the schedule" order replayed;
  Alcotest.(check (list int))
    "replay re-records the same trace"
    (Array.to_list decisions) (Array.to_list rerecorded)

let test_policy_scripted_fallback () =
  (* An exhausted or out-of-range script degrades to FIFO, clamped. *)
  let order, _ = firing_order (Engine.Scripted [||]) in
  Alcotest.(check (list int)) "empty script is FIFO" [ 1; 2; 3; 4; 5; 6 ] order;
  let order, rerecorded = firing_order (Engine.Scripted [| 99 |]) in
  (match order with
  | first :: _ -> Alcotest.(check int) "out-of-range choice clamps to last" 6 first
  | [] -> Alcotest.fail "no events fired");
  Alcotest.(check bool)
    "the clamped choice is what gets recorded" true
    (Array.length rerecorded > 0 && rerecorded.(0) = 5)

(* Only real choice points (>= 2 live same-instant candidates) enter
   the trace: cancelled events and singletons are not decisions. *)
let test_policy_trace_is_compact () =
  let engine = Engine.create ~policy:(Engine.Seeded 3) () in
  ignore (Engine.schedule engine ~after:(Time.usec 1) (fun () -> ()));
  ignore (Engine.schedule engine ~after:(Time.usec 2) (fun () -> ()));
  let h = Engine.schedule engine ~after:(Time.usec 3) (fun () -> ()) in
  ignore (Engine.schedule engine ~after:(Time.usec 3) (fun () -> ()));
  Engine.cancel h;
  Engine.run engine;
  Alcotest.(check int) "no k>=2 choice ever arose" 0 (Array.length (Engine.decisions engine))

(* The engine-policy regression for the pooled-representation
   refactor: firing orders and decision traces below were captured
   from the seed (boxed-entry, list-based) engine at commit a108f84.
   They are part of the repro-file contract — a recorded schedule must
   replay identically forever — so a representation change that
   shifts any of these values is a bug, not a re-pin. *)
let pin_scenario policy =
  let engine = Engine.create ~policy () in
  let order = ref [] in
  let mark tag () = order := tag :: !order in
  for i = 1 to 8 do
    ignore (Engine.schedule engine ~after:(if i mod 2 = 0 then 10 else 20) (mark i))
  done;
  let h = Engine.schedule engine ~after:10 (mark 99) in
  Engine.cancel h;
  ignore
    (Engine.schedule engine ~after:10 (fun () ->
         ignore (Engine.schedule engine ~after:0 (mark 50))));
  Engine.run engine;
  (List.rev !order, Array.to_list (Engine.decisions engine))

let test_policy_pinned_traces () =
  let order9, dec9 = pin_scenario (Engine.Seeded 9) in
  Alcotest.(check (list int)) "seeded 9 order" [ 8; 6; 4; 2; 50; 3; 7; 5; 1 ] order9;
  Alcotest.(check (list int)) "seeded 9 decisions" [ 4; 3; 2; 1; 0; 1; 2; 1 ] dec9;
  let order42, dec42 = pin_scenario (Engine.Seeded 42) in
  Alcotest.(check (list int)) "seeded 42 order" [ 8; 6; 50; 2; 4; 3; 7; 1; 5 ] order42;
  Alcotest.(check (list int)) "seeded 42 decisions" [ 3; 3; 2; 2; 0; 1; 2; 0 ] dec42;
  let replayed, rerecorded = pin_scenario (Engine.Scripted (Array.of_list dec9)) in
  Alcotest.(check (list int)) "scripted replay order" order9 replayed;
  Alcotest.(check (list int)) "scripted replay re-records" dec9 rerecorded

(* Same pin at storm scale: 40 self-rescheduling timers over 7
   colliding instants.  The order-sensitive checksum pins the complete
   schedule without spelling out 400 events. *)
let pin_storm policy =
  let engine = Engine.create ~policy () in
  let fired = ref 0 in
  let sum = ref 0 in
  let total = 400 in
  let timers = 40 in
  let rec tick i () =
    incr fired;
    sum := (!sum * 31) + i + Engine.now engine;
    if !fired + timers <= total then
      ignore (Engine.schedule engine ~after:(1 + ((i + !fired) mod 7)) (tick i))
  in
  for i = 0 to timers - 1 do
    ignore (Engine.schedule engine ~after:(1 + (i mod 7)) (tick i))
  done;
  Engine.run engine;
  (!fired, !sum, Array.to_list (Engine.decisions engine))

let test_policy_pinned_storm () =
  let fired, sum, decisions = pin_storm (Engine.Seeded 7) in
  Alcotest.(check int) "storm fires every event" 400 fired;
  Alcotest.(check int) "storm schedule checksum (seeded 7)" 1619155989714001184 sum;
  Alcotest.(check int) "storm decision count" 356 (List.length decisions);
  Alcotest.(check (list int))
    "storm decision prefix"
    [ 2; 0; 0; 2; 1; 1; 4; 0; 1; 1 ]
    (List.filteri (fun i _ -> i < 10) decisions);
  let fired_f, sum_f, _ = pin_storm Engine.Fifo in
  Alcotest.(check int) "fifo storm fires every event" 400 fired_f;
  Alcotest.(check int) "storm schedule checksum (fifo)" (-4518856617332645823) sum_f

let test_trace_query () =
  let trace = Trace.create () in
  Trace.emit trace ~now:(Time.usec 5) Trace.Info "rs" "restarting %s (attempt %d)" "eth" 2;
  Trace.emit trace ~now:(Time.usec 9) Trace.Warn "inet" "driver %s down" "eth";
  Alcotest.(check int) "count matches" 1 (Trace.count trace ~subsystem:"rs" ~contains:"restarting");
  (match Trace.find trace ~subsystem:"rs" ~contains:"attempt 2" with
  | Some e -> Alcotest.(check int) "event time preserved" 5 e.Trace.time
  | None -> Alcotest.fail "expected to find the rs event");
  Alcotest.(check int) "no cross-subsystem match" 0
    (Trace.count trace ~subsystem:"rs" ~contains:"driver eth down")

let test_trace_capacity () =
  let trace = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.emit trace ~now:(Time.usec i) Trace.Debug "x" "event %d" i
  done;
  let evs = Trace.events trace in
  Alcotest.(check int) "bounded retention" 3 (List.length evs);
  Alcotest.(check string) "oldest dropped" "event 3" (Trace.message (List.hd evs))

(* Every read path must agree on "the newest [capacity] events, oldest
   first" after the ring wraps — not just [events]. *)
let test_trace_wraparound_reads () =
  let trace = Trace.create ~capacity:3 () in
  for i = 1 to 8 do
    Trace.emit trace ~now:(Time.usec i) Trace.Debug "x" "event %d" i
  done;
  Alcotest.(check (list string)) "events: newest capacity, in order"
    [ "event 6"; "event 7"; "event 8" ]
    (List.map Trace.message (Trace.events trace));
  Alcotest.(check (list string)) "query sees the same window"
    [ "event 6"; "event 7"; "event 8" ]
    (List.map Trace.message (Trace.query trace ~pred:(fun _ -> true)));
  Alcotest.(check int) "count scans the whole window" 3
    (Trace.count trace ~subsystem:"x" ~contains:"event");
  Alcotest.(check bool) "find misses overwritten events" true
    (Trace.find trace ~subsystem:"x" ~contains:"event 5" = None);
  (match Trace.find trace ~subsystem:"x" ~contains:"event 6" with
  | Some e -> Alcotest.(check int) "find sees the oldest retained event" 6 e.Trace.time
  | None -> Alcotest.fail "expected to find event 6")

(* The growth-then-wrap boundary: the buffer doubles while filling,
   then wraps only once the configured capacity is reached. *)
let test_trace_growth_then_wrap () =
  let trace = Trace.create ~capacity:100 () in
  for i = 1 to 250 do
    Trace.emit trace ~now:(Time.usec i) Trace.Debug "x" "event %d" i
  done;
  let evs = Trace.events trace in
  Alcotest.(check int) "capacity events retained" 100 (List.length evs);
  Alcotest.(check string) "window starts at 151" "event 151" (Trace.message (List.hd evs));
  Alcotest.(check string) "window ends at 250"
    "event 250"
    (Trace.message (List.nth evs 99));
  Alcotest.(check int) "slots never exceed capacity" 100 (Trace.allocated_slots trace)

let test_trace_capacity_one () =
  let trace = Trace.create ~capacity:1 () in
  for i = 1 to 4 do
    Trace.emit trace ~now:(Time.usec i) Trace.Debug "x" "event %d" i
  done;
  Alcotest.(check (list string)) "only the newest survives" [ "event 4" ]
    (List.map Trace.message (Trace.events trace))

(* [clear] must reset contents without dropping the ring's allocation
   (mirrors [Heap.clear]): a trace cleared every simulated boot would
   otherwise re-grow its buffer from scratch each time. *)
let test_trace_clear_keeps_allocation () =
  let trace = Trace.create ~capacity:8 () in
  for i = 1 to 8 do
    Trace.emit trace ~now:(Time.usec i) Trace.Debug "x" "event %d" i
  done;
  let slots = Trace.allocated_slots trace in
  Trace.clear trace;
  Alcotest.(check (list string)) "cleared trace is empty" []
    (List.map Trace.message (Trace.events trace));
  Alcotest.(check int) "allocation retained across clear" slots (Trace.allocated_slots trace);
  Trace.emit trace ~now:(Time.usec 99) Trace.Debug "x" "after clear";
  Alcotest.(check (list string)) "trace usable after clear" [ "after clear" ]
    (List.map Trace.message (Trace.events trace))

(* Space-leak regression for [clear], like the Heap one: a cleared
   event's payload must be collectable even while the trace (and its
   retained buffer) stays alive — clear must blank the slots, not just
   reset the cursors. *)
let test_trace_clear_releases_payloads () =
  let trace = Trace.create ~capacity:4 () in
  let live = Weak.create 1 in
  let payload = String.init 64 (fun i -> Char.chr (65 + (i mod 26))) in
  Weak.set live 0 (Some payload);
  (* emit_event stores the payload record itself (emit would format a
     copy), so the slot really does reference this string. *)
  Trace.emit_event trace ~now:(Time.usec 1) "x" (Resilix_obs.Event.Log { text = payload });
  Trace.clear trace;
  Gc.full_major ();
  Alcotest.(check bool) "cleared payload is collectable" true (Weak.get live 0 = None)

(* Property: popping the heap yields keys in nondecreasing order, with
   FIFO sequence order inside equal keys. *)
let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted by (key, seq)" ~count:300
    QCheck.(list (int_bound 50))
    (fun keys ->
      let h = Heap.create ~dummy:min_int () in
      List.iteri (fun seq key -> Heap.push h ~key ~seq key) keys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (k, s, _) -> drain ((k, s) :: acc)
      in
      let out = drain [] in
      let rec ordered = function
        | (k1, s1) :: ((k2, s2) :: _ as rest) ->
            (k1 < k2 || (k1 = k2 && s1 < s2)) && ordered rest
        | [ _ ] | [] -> true
      in
      List.length out = List.length keys && ordered out)

(* Model-based property: an interleaved stream of push/pop/clear
   operations behaves exactly like a sorted-list reference model.
   Keys are drawn from a tiny range so duplicate keys (seq
   tie-breaking) dominate, and ops 10/11 inject clears. *)
let prop_heap_model =
  QCheck.Test.make ~name:"heap matches sorted-list model (push/pop/clear)" ~count:300
    QCheck.(list (int_bound 11))
    (fun ops ->
      let h = Heap.create ~dummy:(-1) () in
      let model = ref [] (* sorted by (key, seq) *) in
      let seq = ref 0 in
      let ok = ref true in
      let check b = if not b then ok := false in
      let insert key s v =
        let rec go = function
          | [] -> [ (key, s, v) ]
          | ((k2, s2, _) as hd) :: tl ->
              if key < k2 || (key = k2 && s < s2) then (key, s, v) :: hd :: tl
              else hd :: go tl
        in
        model := go !model
      in
      List.iter
        (fun op ->
          if op <= 7 then begin
            (* push with key in 0..3: collisions are the common case *)
            let key = op land 3 in
            incr seq;
            let v = (key * 1000) + !seq in
            Heap.push h ~key ~seq:!seq v;
            insert key !seq v
          end
          else if op <= 9 then begin
            (match (Heap.pop h, !model) with
            | None, [] -> ()
            | Some (k, s, v), (mk, ms, mv) :: rest ->
                model := rest;
                check (k = mk && s = ms && v = mv)
            | Some _, [] | None, _ :: _ -> check false);
            check (Heap.length h = List.length !model)
          end
          else begin
            Heap.clear h;
            model := [];
            check (Heap.is_empty h)
          end)
        ops;
      (* Drain what is left; the tail must match the model exactly. *)
      let rec drain () =
        match (Heap.pop h, !model) with
        | None, [] -> ()
        | Some (k, s, v), (mk, ms, mv) :: rest ->
            model := rest;
            check (k = mk && s = ms && v = mv);
            drain ()
        | Some _, [] | None, _ :: _ -> check false
      in
      drain ();
      !ok)

(* Space-leak regression: a popped value must be collectable even
   while the heap object itself stays alive (the seed heap kept the
   popped entry referenced through [data.(size)]). *)
let test_heap_pop_releases_values () =
  let h = Heap.create ~dummy:[||] () in
  let live = Weak.create 3 in
  for i = 0 to 2 do
    let v = Array.make 10 i in
    Weak.set live i (Some v);
    Heap.push h ~key:i ~seq:i v
  done;
  ignore (Heap.pop h);
  ignore (Heap.pop h);
  Heap.clear h;
  Gc.full_major ();
  for i = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "popped/cleared value %d is collectable" i)
      true
      (Weak.get live i = None)
  done;
  (* the heap is still usable afterwards *)
  Heap.push h ~key:7 ~seq:1 [| 7 |];
  match Heap.pop h with
  | Some (7, 1, [| 7 |]) -> ()
  | _ -> Alcotest.fail "heap unusable after clear"

let prop_engine_no_time_travel =
  QCheck.Test.make ~name:"engine clock is monotone" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 30) (int_bound 1000))
    (fun delays ->
      let engine = Engine.create () in
      let monotone = ref true in
      let last = ref 0 in
      List.iter
        (fun d ->
          ignore
            (Engine.schedule engine ~after:d (fun () ->
                 if Engine.now engine < !last then monotone := false;
                 last := Engine.now engine)))
        delays;
      Engine.run engine;
      !monotone)

let tests =
  [
    Alcotest.test_case "event ordering" `Quick test_event_ordering;
    Alcotest.test_case "FIFO tie-breaking" `Quick test_fifo_ties;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "cancellation edge cases" `Quick test_cancel_edge_cases;
    Alcotest.test_case "run ~until" `Quick test_run_until;
    Alcotest.test_case "run ~until exact clock" `Quick test_run_until_exact_clock;
    Alcotest.test_case "nested scheduling" `Quick test_nested_schedule;
    Alcotest.test_case "no scheduling in the past" `Quick test_schedule_past_rejected;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng derive is order/sibling independent" `Quick
      test_rng_derive_order_independent;
    Alcotest.test_case "rng derived streams independent" `Quick
      test_rng_derive_streams_independent;
    Alcotest.test_case "rng derive collision-free" `Quick test_rng_derive_collision_free;
    Alcotest.test_case "rng derive pinned values" `Quick test_rng_derive_stability;
    Alcotest.test_case "policy: fifo records nothing" `Quick test_policy_fifo_records_nothing;
    Alcotest.test_case "policy: seeded permutation" `Quick test_policy_seeded_permutation;
    Alcotest.test_case "policy: scripted replay" `Quick test_policy_scripted_replays;
    Alcotest.test_case "policy: scripted fallback/clamp" `Quick test_policy_scripted_fallback;
    Alcotest.test_case "policy: trace is compact" `Quick test_policy_trace_is_compact;
    Alcotest.test_case "policy: pinned decision traces" `Quick test_policy_pinned_traces;
    Alcotest.test_case "policy: pinned storm checksum" `Quick test_policy_pinned_storm;
    Alcotest.test_case "heap: pop releases values" `Quick test_heap_pop_releases_values;
    Alcotest.test_case "trace query" `Quick test_trace_query;
    Alcotest.test_case "trace capacity bound" `Quick test_trace_capacity;
    Alcotest.test_case "trace wraparound reads" `Quick test_trace_wraparound_reads;
    Alcotest.test_case "trace growth then wrap" `Quick test_trace_growth_then_wrap;
    Alcotest.test_case "trace capacity one" `Quick test_trace_capacity_one;
    Alcotest.test_case "trace clear keeps allocation" `Quick test_trace_clear_keeps_allocation;
    Alcotest.test_case "trace clear releases payloads" `Quick test_trace_clear_releases_payloads;
    QCheck_alcotest.to_alcotest prop_heap_sorted;
    QCheck_alcotest.to_alcotest prop_heap_model;
    QCheck_alcotest.to_alcotest prop_engine_no_time_travel;
  ]
