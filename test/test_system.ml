(* Full-system integration tests: boot the complete simulated machine
   (Fig. 1 architecture) and exercise the recovery schemes of Sec. 6
   end to end. *)

module System = Resilix_system.System
module Hwmap = Resilix_system.Hwmap
module Engine = Resilix_sim.Engine
module Reincarnation = Resilix_core.Reincarnation
module Status = Resilix_proto.Status
module Peer = Resilix_net.Peer
module Filegen = Resilix_net.Filegen
module Wget = Resilix_apps.Wget
module Dd = Resilix_apps.Dd

let file_seed = 1234

let boot_with_net ?(file_mb = 4) () =
  let size = file_mb * 1024 * 1024 in
  let opts =
    {
      System.default_opts with
      System.peer_files = [ ("big.bin", (size, file_seed)) ];
      fs_files = [ ("data.bin", 2 * 1024 * 1024) ];
      disk_mb = 16;
    }
  in
  let t = System.boot ~opts () in
  (t, size)

let test_boot_and_services () =
  let t, _ = boot_with_net () in
  System.start_services t [ System.spec_rtl8139 (); System.spec_sata () ];
  Alcotest.(check bool) "rtl8139 up" true (Reincarnation.service_up t.System.rs "eth.rtl8139");
  Alcotest.(check bool) "sata up" true (Reincarnation.service_up t.System.rs "blk.sata")

let test_wget_clean () =
  let t, size = boot_with_net () in
  System.start_services t [ System.spec_rtl8139 () ];
  let result = Wget.fresh_result () in
  ignore
    (System.spawn_app t ~name:"wget"
       (Wget.make ~server:Hwmap.rtl_peer_ip ~port:80 ~file:"big.bin" result));
  let finished = System.run_until t ~timeout:120_000_000 (fun () -> result.Wget.finished) in
  Alcotest.(check bool) "transfer finished" true finished;
  Alcotest.(check bool) "transfer ok" true result.Wget.ok;
  Alcotest.(check int) "all bytes" size result.Wget.bytes;
  Alcotest.(check string) "digest matches the served file"
    (Filegen.fnv_digest ~seed:file_seed ~size)
    result.Wget.fnv

let test_wget_with_driver_kills () =
  let t, size = boot_with_net () in
  System.start_services t [ System.spec_rtl8139 () ];
  let result = Wget.fresh_result () in
  ignore
    (System.spawn_app t ~name:"wget"
       (Wget.make ~server:Hwmap.rtl_peer_ip ~port:80 ~file:"big.bin" result));
  (* Kill the Ethernet driver twice mid-transfer (Sec. 7.1). *)
  ignore
    (Engine.schedule t.System.engine ~after:100_000 (fun () ->
         ignore (System.kill_service_once t ~target:"eth.rtl8139")));
  ignore
    (Engine.schedule t.System.engine ~after:450_000 (fun () ->
         ignore (System.kill_service_once t ~target:"eth.rtl8139")));
  let finished = System.run_until t ~timeout:300_000_000 (fun () -> result.Wget.finished) in
  Alcotest.(check bool) "transfer finished despite kills" true finished;
  Alcotest.(check bool) "transfer ok" true result.Wget.ok;
  Alcotest.(check int) "no data lost or duplicated" size result.Wget.bytes;
  Alcotest.(check string) "data integrity preserved (checksum comparison)"
    (Filegen.fnv_digest ~seed:file_seed ~size)
    result.Wget.fnv;
  Alcotest.(check int) "driver was recovered twice" 2
    (Reincarnation.restarts_of t.System.rs "eth.rtl8139");
  Alcotest.(check bool) "driver reintegrated by INET" true
    (Resilix_net.Inet.driver_generation t.System.inet >= 3)

let run_dd t result =
  ignore (System.spawn_app t ~name:"dd" (Dd.make ~path:"/data.bin" result));
  System.run_until t ~timeout:300_000_000 (fun () -> result.Dd.finished)

let test_dd_clean () =
  let t, _ = boot_with_net () in
  System.start_services t [ System.spec_sata () ];
  let result = Dd.fresh_result () in
  let finished = run_dd t result in
  Alcotest.(check bool) "dd finished" true finished;
  Alcotest.(check bool) "dd ok" true result.Dd.ok;
  Alcotest.(check int) "all bytes read" (2 * 1024 * 1024) result.Dd.bytes;
  Alcotest.(check bool) "digest nonempty" true (String.length result.Dd.fnv > 0)

let test_dd_with_driver_kills () =
  (* Run the same read twice — once clean, once with two driver kills.
     The checksums must agree (the paper's SHA-1 comparison). *)
  let clean = Dd.fresh_result () in
  let t1, _ = boot_with_net () in
  System.start_services t1 [ System.spec_sata () ];
  ignore (run_dd t1 clean);
  let crashed = Dd.fresh_result () in
  let t2, _ = boot_with_net () in
  System.start_services t2 [ System.spec_sata () ];
  ignore
    (Engine.schedule t2.System.engine ~after:20_000 (fun () ->
         ignore (System.kill_service_once t2 ~target:"blk.sata")));
  ignore
    (Engine.schedule t2.System.engine ~after:60_000 (fun () ->
         ignore (System.kill_service_once t2 ~target:"blk.sata")));
  let finished = run_dd t2 crashed in
  Alcotest.(check bool) "dd finished despite kills" true finished;
  Alcotest.(check bool) "dd ok" true crashed.Dd.ok;
  Alcotest.(check int) "same byte count" clean.Dd.bytes crashed.Dd.bytes;
  Alcotest.(check string) "identical checksum across crashes" clean.Dd.fnv crashed.Dd.fnv;
  Alcotest.(check int) "disk driver recovered twice" 2
    (Reincarnation.restarts_of t2.System.rs "blk.sata");
  Alcotest.(check bool) "pending I/O was reissued" true
    (Resilix_fs.Mfs.reissued_ios t2.System.mfs >= 1)

let test_file_write_read_roundtrip () =
  let t, _ = boot_with_net () in
  System.start_services t [ System.spec_sata () ];
  let done_flag = ref false in
  let read_back = ref "" in
  ignore
    (System.spawn_app t ~name:"editor" (fun () ->
         let module Fslib = Resilix_apps.Fslib in
         (match Fslib.open_file "/notes.txt" ~wr:true ~create:true with
         | Ok fd ->
             ignore (Fslib.write fd (Bytes.of_string "failure resilience for device drivers"));
             ignore (Fslib.close fd)
         | Error _ -> ());
         (match Fslib.open_file "/notes.txt" with
         | Ok fd -> (
             match Fslib.read fd ~len:100 with
             | Ok data ->
                 read_back := Bytes.to_string data;
                 ignore (Fslib.close fd)
             | Error _ -> ())
         | Error _ -> ());
         done_flag := true));
  let finished = System.run_until t ~timeout:60_000_000 (fun () -> !done_flag) in
  Alcotest.(check bool) "roundtrip finished" true finished;
  Alcotest.(check string) "file contents survive" "failure resilience for device drivers"
    !read_back

(* Inbound TCP: an in-system echo server behind INET's listen/accept,
   exercised by a TCP client at the remote peer. *)
let test_inbound_tcp_accept () =
  let t, _ = boot_with_net () in
  System.start_services t [ System.spec_rtl8139 () ];
  let module Sockets = Resilix_apps.Sockets in
  let module Message = Resilix_proto.Message in
  let serving = ref false in
  ignore
    (System.spawn_app t ~name:"echo-server" (fun () ->
         match Sockets.socket Message.Tcp with
         | Error _ -> ()
         | Ok lsock ->
             ignore (Sockets.listen lsock ~port:2000);
             serving := true;
             let rec accept_loop () =
               match Sockets.accept lsock with
               | Error _ -> ()
               | Ok sock ->
                   let rec serve () =
                     match Sockets.recv sock ~len:4096 with
                     | Ok data when Bytes.length data > 0 ->
                         ignore (Sockets.send_all sock (Bytes.uppercase_ascii data));
                         serve ()
                     | _ -> ignore (Sockets.close sock)
                   in
                   serve ();
                   accept_loop ()
             in
             accept_loop ()));
  ignore (System.run_until t ~timeout:10_000_000 (fun () -> !serving));
  let client =
    Peer.start_tcp_client t.System.rtl_peer ~dst_ip:Hwmap.local_ip ~dst_mac:Hwmap.rtl8139_mac
      ~dst_port:2000 ~payload:"shout this back"
  in
  let got_reply =
    System.run_until t ~timeout:60_000_000 (fun () ->
        String.length client.Peer.response >= String.length "shout this back")
  in
  Alcotest.(check bool) "client connected" true client.Peer.connected;
  Alcotest.(check bool) "reply received" true got_reply;
  Alcotest.(check string) "echo uppercased" "SHOUT THIS BACK" client.Peer.response

(* A second block device: raw sector I/O against the floppy driver. *)
let test_floppy_raw_io () =
  let t, _ = boot_with_net () in
  System.start_services t [ System.spec_floppy () ];
  let module Api = Resilix_kernel.Sysif.Api in
  let module Sysif = Resilix_kernel.Sysif in
  let module Message = Resilix_proto.Message in
  let module Memory = Resilix_kernel.Memory in
  let module Privilege = Resilix_proto.Privilege in
  let ok = ref false in
  ignore
    (System.spawn_app t ~name:"rawio"
       ~priv:{ Resilix_proto.Privilege.app with Privilege.ipc_to = Privilege.All }
       (fun () ->
         match Resilix_core.Service.lookup "blk.floppy" with
         | Error _ -> ()
         | Ok (drv, _) -> (
             ignore (Api.sendrec drv (Message.Dev_open { minor = 0 }));
             let mem = Api.memory () in
             Memory.write mem ~addr:0x2000 (Bytes.make 512 'F');
             match Api.grant_create ~for_:drv ~base:0x2000 ~len:512 ~access:Sysif.Read_only with
             | Error _ -> ()
             | Ok g -> (
                 (match
                    Api.sendrec drv (Message.Dev_write { minor = 0; pos = 0; grant = g; len = 512 })
                  with
                 | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result = Ok 512 }; _ }) -> ()
                 | _ -> failwith "floppy write failed");
                 ignore (Api.grant_revoke g);
                 match
                   Api.grant_create ~for_:drv ~base:0x3000 ~len:512 ~access:Sysif.Write_only
                 with
                 | Error _ -> ()
                 | Ok g2 -> (
                     match
                       Api.sendrec drv
                         (Message.Dev_read { minor = 0; pos = 0; grant = g2; len = 512 })
                     with
                     | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result = Ok 512 }; _ }) ->
                         let back = Memory.read mem ~addr:0x3000 ~len:512 in
                         ok := Bytes.equal back (Bytes.make 512 'F')
                     | _ -> failwith "floppy read failed")))));
  ignore (System.run_until t ~timeout:60_000_000 (fun () -> !ok));
  Alcotest.(check bool) "floppy write/read roundtrip" true !ok

(* Service utility lifecycle: duplicate up is EBUSY; down stops
   monitoring for good. *)
let test_service_down_and_duplicate_up () =
  let t, _ = boot_with_net () in
  System.start_services t [ System.spec_sata () ];
  let module Service = Resilix_core.Service in
  let module Errno = Resilix_proto.Errno in
  let dup = ref None and down = ref None in
  ignore
    (System.spawn_app t ~name:"admin" (fun () ->
         dup := Some (Service.up (System.spec_sata ()));
         down := Some (Service.down "blk.sata");
         (* Give RS a moment; the service must stay down. *)
         Resilix_kernel.Sysif.Api.sleep 2_000_000));
  System.run t ~until:(Engine.now t.System.engine + 5_000_000);
  (match !dup with
  | Some (Error Errno.E_busy) -> ()
  | _ -> Alcotest.fail "duplicate service up must be EBUSY");
  (match !down with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "service down failed");
  Alcotest.(check bool) "service stays down (no recovery)" false
    (Reincarnation.service_up t.System.rs "blk.sata");
  Alcotest.(check int) "no recovery event for a deliberate stop" 0
    (List.length (Reincarnation.events t.System.rs))

let tests =
  [
    Alcotest.test_case "boot and start services" `Quick test_boot_and_services;
    Alcotest.test_case "inbound TCP listen/accept" `Quick test_inbound_tcp_accept;
    Alcotest.test_case "floppy raw sector I/O" `Quick test_floppy_raw_io;
    Alcotest.test_case "service down / duplicate up" `Quick test_service_down_and_duplicate_up;
    Alcotest.test_case "wget (no faults)" `Quick test_wget_clean;
    Alcotest.test_case "wget with driver kills" `Quick test_wget_with_driver_kills;
    Alcotest.test_case "dd (no faults)" `Quick test_dd_clean;
    Alcotest.test_case "dd with driver kills" `Quick test_dd_with_driver_kills;
    Alcotest.test_case "file write/read roundtrip" `Quick test_file_write_read_roundtrip;
  ]
