(* Policy v2: the circuit-breaker state machine (every transition),
   the Policy_action trace contract, and the flaky-driver degradation
   story end to end. *)

module System = Resilix_system.System
module Engine = Resilix_sim.Engine
module Trace = Resilix_sim.Trace
module Kernel = Resilix_kernel.Kernel
module Api = Resilix_kernel.Sysif.Api
module Errno = Resilix_proto.Errno
module Privilege = Resilix_proto.Privilege
module Spec = Resilix_proto.Spec
module Event = Resilix_obs.Event
module Metrics = Resilix_obs.Metrics
module Policy = Resilix_core.Policy
module Reincarnation = Resilix_core.Reincarnation
module Service = Resilix_core.Service
module Data_store = Resilix_datastore.Data_store
module Fslib = Resilix_apps.Fslib
module Scenario = Resilix_dst.Scenario
module Invariant = Resilix_dst.Invariant

let boot ?policies () =
  let opts =
    match policies with
    | None -> { System.default_opts with System.disk_mb = 8 }
    | Some ps ->
        {
          System.default_opts with
          System.disk_mb = 8;
          policies = System.default_opts.System.policies @ ps;
        }
  in
  System.boot ~opts ()

let svc_priv = Privilege.driver ~ipc_to:[ "rs"; "ds"; "vfs" ] ~io_ports:[] ~irqs:[]

(* Crashes 10 ms after every (re)start — a permanent fault. *)
let panicky_program () =
  Api.sleep 10_000;
  Api.panic "permanent fault"

let docile_program () =
  Resilix_drivers.Driver_lib.run_dev Resilix_drivers.Driver_lib.default_dev_handlers

let breaker_stat_of rs name =
  match
    List.find_opt (fun b -> b.Reincarnation.bs_component = name) (Reincarnation.breaker_stats rs)
  with
  | Some b -> b
  | None -> Alcotest.fail (Printf.sprintf "no breaker snapshot for %s" name)

(* Closed -> open: [trip_threshold] failures inside the window trip the
   breaker, park the service [`Degraded], unpublish its endpoint and
   publish a degraded.* record. *)
let test_trip_at_threshold () =
  let t =
    boot
      ~policies:
        [
          ( "b2",
            Policy.breaker ~trip_threshold:2 ~window_us:10_000_000 ~cooldown_us:60_000_000 () );
        ]
      ()
  in
  Kernel.register_program t.System.kernel "panicky" panicky_program;
  let spec =
    Spec.make ~name:"svc.panicky" ~program:"panicky" ~privileges:svc_priv ~heartbeat_period:0
      ~policy:"b2" ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  System.run t ~until:(Engine.now t.System.engine + 5_000_000);
  let b = breaker_stat_of t.System.rs "svc.panicky" in
  Alcotest.(check bool) "breaker open" true (b.Reincarnation.bs_state = Reincarnation.B_open);
  Alcotest.(check int) "tripped exactly once" 1 b.Reincarnation.bs_trips;
  Alcotest.(check bool) "no probe before cooldown" true (b.Reincarnation.bs_probes = 0);
  Alcotest.(check bool) "service parked degraded" true
    (Reincarnation.service_state t.System.rs "svc.panicky" = `Degraded);
  Alcotest.(check (list string))
    "RS reports it degraded" [ "svc.panicky" ]
    (Reincarnation.degraded_components t.System.rs);
  Alcotest.(check (list string))
    "DS publishes degraded.*" [ "svc.panicky" ]
    (Data_store.degraded t.System.ds);
  Alcotest.(check bool) "endpoint unpublished" true
    (Data_store.lookup t.System.ds "svc.panicky" = None);
  (* Only the failures up to the trip are recorded: the breaker bounds
     churn, it does not restart a parked component. *)
  Alcotest.(check int) "exactly threshold failures" 2
    (List.length (Reincarnation.events t.System.rs))

(* The failure window slides: failures spaced wider than [window_us]
   never accumulate to the threshold, so the breaker stays closed and
   the script keeps restarting. *)
let test_window_slides () =
  let t =
    boot
      ~policies:
        [
          ( "b-narrow",
            Policy.breaker ~trip_threshold:2 ~window_us:1_000_000 ~cooldown_us:60_000_000 () );
        ]
      ()
  in
  Kernel.register_program t.System.kernel "slow-crash" (fun () ->
      Api.sleep 2_500_000;
      Api.panic "eventual fault");
  let spec =
    Spec.make ~name:"svc.slow" ~program:"slow-crash" ~privileges:svc_priv ~heartbeat_period:0
      ~policy:"b-narrow" ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  System.run t ~until:(Engine.now t.System.engine + 12_000_000);
  let b = breaker_stat_of t.System.rs "svc.slow" in
  Alcotest.(check bool) "breaker still closed" true
    (b.Reincarnation.bs_state = Reincarnation.B_closed);
  Alcotest.(check int) "never tripped" 0 b.Reincarnation.bs_trips;
  Alcotest.(check bool)
    (Printf.sprintf "kept restarting (%d)" (Reincarnation.restarts_of t.System.rs "svc.slow"))
    true
    (Reincarnation.restarts_of t.System.rs "svc.slow" >= 3);
  Alcotest.(check (list string)) "never degraded" [] (Data_store.degraded t.System.ds)

(* Open -> half-open -> open: after [cooldown_us] RS probes with one
   fresh incarnation; a probe that fails re-trips the breaker. *)
let test_probe_failure_reopens () =
  let t =
    boot
      ~policies:
        [
          ( "b-probe",
            Policy.breaker ~trip_threshold:2 ~window_us:10_000_000 ~cooldown_us:2_000_000
              ~confirm_us:500_000 () );
        ]
      ()
  in
  Kernel.register_program t.System.kernel "panicky" panicky_program;
  let spec =
    Spec.make ~name:"svc.panicky" ~program:"panicky" ~privileges:svc_priv ~heartbeat_period:0
      ~policy:"b-probe" ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  System.run t ~until:(Engine.now t.System.engine + 9_000_000);
  let b = breaker_stat_of t.System.rs "svc.panicky" in
  Alcotest.(check bool)
    (Printf.sprintf "probed after cooldown (%d)" b.Reincarnation.bs_probes)
    true
    (b.Reincarnation.bs_probes >= 2);
  Alcotest.(check bool)
    (Printf.sprintf "each failed probe re-trips (%d)" b.Reincarnation.bs_trips)
    true
    (b.Reincarnation.bs_trips >= 2);
  Alcotest.(check bool) "ends open" true (b.Reincarnation.bs_state = Reincarnation.B_open);
  Alcotest.(check bool) "still degraded" true
    (Reincarnation.service_state t.System.rs "svc.panicky" = `Degraded)

(* Half-open -> closed: a probe incarnation that survives [confirm_us]
   closes the breaker, republishes the endpoint and clears the
   degraded record. *)
let test_probe_success_closes () =
  let t =
    boot
      ~policies:
        [
          ( "b-heal",
            Policy.breaker ~trip_threshold:3 ~window_us:10_000_000 ~cooldown_us:2_000_000
              ~confirm_us:1_000_000 () );
        ]
      ()
  in
  let attempts = ref 0 in
  Kernel.register_program t.System.kernel "teething" (fun () ->
      incr attempts;
      if !attempts <= 3 then begin
        Api.sleep 10_000;
        Api.panic "teething trouble"
      end
      else docile_program ());
  let spec =
    Spec.make ~name:"svc.teething" ~program:"teething" ~privileges:svc_priv ~heartbeat_period:0
      ~policy:"b-heal" ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  System.run t ~until:(Engine.now t.System.engine + 8_000_000);
  let b = breaker_stat_of t.System.rs "svc.teething" in
  Alcotest.(check bool) "breaker closed again" true
    (b.Reincarnation.bs_state = Reincarnation.B_closed);
  Alcotest.(check int) "tripped once" 1 b.Reincarnation.bs_trips;
  Alcotest.(check int) "one probe sufficed" 1 b.Reincarnation.bs_probes;
  Alcotest.(check bool) "service back up" true
    (Reincarnation.service_state t.System.rs "svc.teething" = `Up);
  Alcotest.(check (list string)) "no longer degraded" [] (Data_store.degraded t.System.ds);
  Alcotest.(check bool) "endpoint republished" true
    (Data_store.lookup t.System.ds "svc.teething" <> None);
  Alcotest.(check bool) "degraded episode over" true (b.Reincarnation.bs_degraded_since = None)

(* While the breaker is closed, RS sends proactive N_health_probe
   notifications between heartbeats and a live driver answers them. *)
let test_health_probes_flow () =
  let t = boot () in
  Kernel.register_program t.System.kernel "docile" docile_program;
  let spec =
    Spec.make ~name:"svc.docile" ~program:"docile" ~privileges:svc_priv
      ~heartbeat_period:400_000 ~max_heartbeat_misses:3 ~policy:"breaker" ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  System.run t ~until:(Engine.now t.System.engine + 4_000_000);
  let metrics = Kernel.metrics t.System.kernel in
  let sent = Metrics.value (Metrics.counter metrics "rs.health_probe.sent") in
  let misses = Metrics.value (Metrics.counter metrics "rs.health_probe.misses") in
  Alcotest.(check bool) (Printf.sprintf "probes sent (%d)" sent) true (sent >= 3);
  Alcotest.(check int) "all probes answered" 0 misses;
  Alcotest.(check bool) "service stayed up" true
    (Reincarnation.service_up t.System.rs "svc.docile")

(* Policy.run emits exactly one typed Policy_action trace event per
   interpreted action, in script order. *)
let test_policy_action_trace () =
  let t =
    boot
      ~policies:[ ("scripted", Policy.script [ Policy.Log "noted"; Policy.Restart; Policy.Alert "ops@local" ]) ]
      ()
  in
  Kernel.register_program t.System.kernel "panicky" panicky_program;
  let spec =
    Spec.make ~name:"svc.scripted" ~program:"panicky" ~privileges:svc_priv ~heartbeat_period:0
      ~policy:"scripted" ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  System.run t ~until:(Engine.now t.System.engine + 1_000_000);
  let first_rep =
    Trace.query (Kernel.trace t.System.kernel) ~pred:(fun e ->
        match e.Trace.payload with
        | Event.Policy_action { component = "svc.scripted"; repetition = 1; _ } -> true
        | _ -> false)
  in
  let actions =
    List.filter_map
      (fun e ->
        match e.Trace.payload with
        | Event.Policy_action { action; _ } -> Some action
        | _ -> None)
      first_rep
  in
  Alcotest.(check (list string))
    "one event per action, in order" [ "log"; "restart"; "alert" ] actions

(* The whole degradation story, DST-style: the built-in flaky scenario
   must end with the breaker open, the component published degraded,
   the workload unblocked — and both breaker invariants clean. *)
let test_flaky_scenario_parks () =
  let s = Scenario.flaky in
  let plan = s.Scenario.plan ~seed:11 ~faults:s.Scenario.default_faults in
  let r = s.Scenario.run ~seed:11 ~policy:Engine.Fifo ~plan in
  Alcotest.(check bool) "workload kept making progress" true r.Scenario.r_completed;
  Alcotest.(check (list string)) "chr.audio published degraded" [ "chr.audio" ] r.Scenario.r_degraded;
  (match r.Scenario.r_breakers with
  | [ b ] ->
      Alcotest.(check string) "component" "chr.audio" b.Scenario.b_component;
      Alcotest.(check string) "ends open" "open" b.Scenario.b_state;
      Alcotest.(check bool)
        (Printf.sprintf "re-tripped by failing probes (%d)" b.Scenario.b_trips)
        true (b.Scenario.b_trips >= 2);
      Alcotest.(check bool) "probe machinery not stuck" false b.Scenario.b_overdue;
      Alcotest.(check bool)
        (Printf.sprintf "churn bounded (%d failures)" b.Scenario.b_failures)
        true
        (b.Scenario.b_failures <= (b.Scenario.b_threshold * (b.Scenario.b_probes + 1)) + b.Scenario.b_probes)
  | bs -> Alcotest.fail (Printf.sprintf "expected one breaker row, got %d" (List.length bs)));
  Alcotest.(check (list string))
    "breaker invariants hold" []
    (Invariant.names (Invariant.check ~bound:2_000_000 r))

(* VFS's side of the contract: once the breaker parks the audio
   driver, /dev/audio requests fail fast with E_degraded (never a
   hang), and applications can query the degraded set through DS. *)
let test_vfs_returns_e_degraded () =
  let t = boot () in
  Kernel.register_program t.System.kernel "chr.audio.flaky" (fun () ->
      Api.sleep 60_000;
      Api.exit (Resilix_proto.Status.Panicked "flaky hardware"));
  let spec =
    Spec.make ~name:"chr.audio" ~program:"chr.audio.flaky"
      ~privileges:(Privilege.driver ~ipc_to:[ "vfs" ] ~io_ports:[] ~irqs:[])
      ~policy:"breaker" ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  let degraded_errors = ref 0 and other_errors = ref 0 and hung = ref false in
  let seen_degraded_list = ref [] in
  ignore
    (System.spawn_app t ~name:"audio-user" (fun () ->
         let rec pump () =
           let t0 = Api.now () in
           (match Fslib.open_file "/dev/audio" ~wr:true with
           | Ok fd ->
               (match Fslib.write fd (Bytes.make 64 'x') with
               | Ok _ -> ()
               | Error Errno.E_degraded -> incr degraded_errors
               | Error _ -> incr other_errors);
               ignore (Fslib.close fd)
           | Error Errno.E_degraded -> incr degraded_errors
           | Error _ -> incr other_errors);
           if Api.now () - t0 > 2_000_000 then hung := true;
           (match Service.degraded_components () with
           | Ok l when l <> [] -> seen_degraded_list := l
           | Ok _ | Error _ -> ());
           Api.sleep 100_000;
           pump ()
         in
         pump ()));
  System.run t ~until:12_000_000;
  Alcotest.(check bool) "no request ever hung" false !hung;
  Alcotest.(check bool)
    (Printf.sprintf "clean E_degraded errors (%d)" !degraded_errors)
    true (!degraded_errors >= 10);
  Alcotest.(check (list string))
    "apps can query the degraded set" [ "chr.audio" ] !seen_degraded_list;
  Alcotest.(check bool) "driver parked at the end" true
    (Reincarnation.service_state t.System.rs "chr.audio" = `Degraded)

let tests =
  [
    Alcotest.test_case "breaker trips at threshold" `Quick test_trip_at_threshold;
    Alcotest.test_case "failure window slides" `Quick test_window_slides;
    Alcotest.test_case "failed probe re-opens" `Quick test_probe_failure_reopens;
    Alcotest.test_case "surviving probe closes" `Quick test_probe_success_closes;
    Alcotest.test_case "health probes answered" `Quick test_health_probes_flow;
    Alcotest.test_case "policy actions traced" `Quick test_policy_action_trace;
    Alcotest.test_case "flaky scenario parks degraded" `Quick test_flaky_scenario_parks;
    Alcotest.test_case "vfs fails fast with E_degraded" `Quick test_vfs_returns_e_degraded;
  ]
