(* The resilix command-line harness: regenerate every table and figure
   of the paper's evaluation, plus the ablations. *)

module E = Resilix_experiments

let mb = 1024 * 1024

let run_fig3 seed = E.Fig3.print (E.Fig3.run ~seed ())

(* [--metrics-out FILE]: run [f] with a JSONL sink writing to FILE
   (metrics snapshots, recovery spans and MTTR reports per run). *)
let with_obs metrics_out f =
  match metrics_out with
  | None -> f None
  | Some file ->
      let oc = open_out file in
      let sink line = output_string oc line; output_char oc '\n' in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f (Some sink))

let run_fig7 seed size_mb intervals metrics_out =
  with_obs metrics_out (fun obs ->
      E.Fig7.print (E.Fig7.run ~size:(size_mb * mb) ~intervals ~seed ?obs ()))

let run_fig8 seed size_mb intervals metrics_out =
  with_obs metrics_out (fun obs ->
      E.Fig8.print (E.Fig8.run ~size:(size_mb * mb) ~intervals ~seed ?obs ()))

let run_sec72 seed faults hw =
  if hw then
    E.Sec72.print "real-hardware variant: wedgeable NIC"
      (E.Sec72.run ~faults ~seed ~wedge_prob:1.0 ~has_master_reset:false ())
  else E.Sec72.print "emulator variant" (E.Sec72.run ~faults ~seed ())

let run_fig9 () = E.Fig9.print (E.Fig9.run ())

let run_ablations seed =
  E.Ablations.print_heartbeat (E.Ablations.heartbeat_sweep ~seed ());
  E.Ablations.print_policy (E.Ablations.policy_comparison ~seed ());
  E.Ablations.print_ipc (E.Ablations.ipc_microbench ())

open Cmdliner

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master RNG seed (runs are deterministic).")

let size_t default =
  Arg.(value & opt int default & info [ "size-mb" ] ~doc:"Transfer size in MB.")

let intervals_t =
  Arg.(
    value
    & opt (list int) [ 1; 2; 4; 8; 15 ]
    & info [ "intervals" ] ~doc:"Kill intervals in seconds (comma separated).")

let faults_t =
  Arg.(value & opt int 2000 & info [ "faults" ] ~doc:"Number of faults to inject.")

let hw_t =
  Arg.(value & flag & info [ "hw" ] ~doc:"Real-hardware variant: the NIC can wedge.")

let metrics_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write JSONL observability output (metric snapshots, recovery spans, MTTR reports).")

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let fig3_cmd = cmd "fig3" "Recovery-scheme matrix (Fig. 3)" Term.(const run_fig3 $ seed_t)

let fig7_cmd =
  cmd "fig7" "wget throughput vs Ethernet-driver kill interval (Fig. 7)"
    Term.(const run_fig7 $ seed_t $ size_t 128 $ intervals_t $ metrics_out_t)

let fig8_cmd =
  cmd "fig8" "dd throughput vs disk-driver kill interval (Fig. 8)"
    Term.(const run_fig8 $ seed_t $ size_t 1024 $ intervals_t $ metrics_out_t)

let sec72_cmd =
  cmd "sec72" "Fault-injection campaign on the DP8390 driver (Sec. 7.2)"
    Term.(const run_sec72 $ seed_t $ faults_t $ hw_t)

let fig9_cmd = cmd "fig9" "Source-code statistics (Fig. 9)" Term.(const run_fig9 $ const ())

let ablations_cmd = cmd "ablations" "Design-choice ablations" Term.(const run_ablations $ seed_t)

let all_cmd =
  cmd "all" "Run every experiment with default parameters"
    Term.(
      const (fun seed size7 size8 intervals faults metrics_out ->
          run_fig3 seed;
          with_obs metrics_out (fun obs ->
              E.Fig7.print (E.Fig7.run ~size:(size7 * mb) ~intervals ~seed ?obs ());
              E.Fig8.print (E.Fig8.run ~size:(size8 * mb) ~intervals ~seed ?obs ()));
          run_sec72 seed faults false;
          run_sec72 seed faults true;
          run_fig9 ();
          run_ablations seed)
      $ seed_t $ size_t 128 $ size_t 512 $ intervals_t $ faults_t $ metrics_out_t)

let () =
  let info =
    Cmd.info "resilix" ~version:"1.0.0"
      ~doc:"Failure resilience for device drivers — experiment harness"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ fig3_cmd; fig7_cmd; fig8_cmd; sec72_cmd; fig9_cmd; ablations_cmd; all_cmd ]))
