(* The resilix command-line harness: regenerate every table and figure
   of the paper's evaluation, plus the ablations.

   Every subcommand takes --jobs: sweeps are hermetic trial campaigns
   (lib/harness) executed on a pool of OCaml domains, and the printed
   tables are byte-identical for any job count.  --progress drives a
   live stderr progress line (completed/total, last trial, ETA) that
   never touches stdout.  The exit status is non-zero when an
   experiment's internal integrity check fails (fig7/fig8 digest
   mismatch, sec7_2 crash-class split mismatch) or when any campaign
   trial failed — every failed trial is summarized by name first. *)

module E = Resilix_experiments
module Campaign = Resilix_harness.Campaign
module Progress = Resilix_harness.Progress
module Dst = Resilix_dst

let mb = 1024 * 1024

(* [--metrics-out FILE]: run [f] with a JSONL sink writing to FILE
   (metrics snapshots, recovery spans and MTTR reports per run). *)
let with_obs metrics_out f =
  match metrics_out with
  | None -> f None
  | Some file ->
      let oc = open_out file in
      let sink line = output_string oc line; output_char oc '\n' in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f (Some sink))

(* Exit-code plumbing: a failed integrity check is a real failure,
   not just a red cell in a table. *)
let checked name ok = if ok then 0 else (Printf.eprintf "INTEGRITY FAILURE: %s\n" name; 1)

(* A campaign with failed trials prints every failure (with its trial
   name) to stderr and exits non-zero, instead of dying on the first
   exception a worker happened to hit. *)
let guard f =
  try f ()
  with Campaign.Partial failures ->
    prerr_endline (Campaign.failures_summary failures);
    1

let progress_for when_ label = Progress.make ~when_ ~label ()

let run_fig3 jobs progress seed =
  guard (fun () ->
      E.Fig3.print (E.Fig3.run ?jobs ?on_progress:(progress_for progress "fig3") ~seed ());
      0)

let run_fig7 jobs progress seed size_mb intervals metrics_out =
  guard (fun () ->
      with_obs metrics_out (fun obs ->
          let rows =
            E.Fig7.run ?jobs
              ?on_progress:(progress_for progress "fig7")
              ~size:(size_mb * mb) ~intervals ~seed ?obs ()
          in
          E.Fig7.print rows;
          checked "fig7 fnv digest" (E.Fig7.ok rows)))

let run_fig8 jobs progress seed size_mb intervals metrics_out =
  guard (fun () ->
      with_obs metrics_out (fun obs ->
          let rows =
            E.Fig8.run ?jobs
              ?on_progress:(progress_for progress "fig8")
              ~size:(size_mb * mb) ~intervals ~seed ?obs ()
          in
          E.Fig8.print rows;
          checked "fig8 digest vs baseline" (E.Fig8.ok rows)))

let run_sec72 jobs progress seed faults shard_size hw metrics_out =
  guard (fun () ->
      with_obs metrics_out (fun obs ->
          let label, wedge_prob =
            if hw then ("real-hardware variant: wedgeable NIC", 1.0) else ("emulator variant", 0.)
          in
          let o =
            E.Sec72.run ?jobs
              ?on_progress:(progress_for progress "sec72")
              ~faults ~seed ~wedge_prob ~has_master_reset:false ?shard_size ?obs ()
          in
          E.Sec72.print label o;
          checked "sec7_2 crash-class split" (E.Sec72.ok o)))

let run_fig9 jobs progress () =
  guard (fun () ->
      E.Fig9.print (E.Fig9.run ?jobs ?on_progress:(progress_for progress "fig9") ());
      0)

let run_ablations jobs progress seed =
  guard (fun () ->
      E.Ablations.print_heartbeat
        (E.Ablations.heartbeat_sweep ?jobs
           ?on_progress:(progress_for progress "ablation/heartbeat")
           ~seed ());
      E.Ablations.print_policy
        (E.Ablations.policy_comparison ?jobs
           ?on_progress:(progress_for progress "ablation/policy")
           ~seed ());
      E.Ablations.print_availability
        (E.Ablations.availability_study ?jobs
           ?on_progress:(progress_for progress "ablation/availability")
           ~seed ());
      E.Ablations.print_ipc
        (E.Ablations.ipc_microbench ?jobs ?on_progress:(progress_for progress "ablation/ipc") ());
      0)

let print_outcome_failures (result : Dst.Explore.result) =
  List.iter
    (fun (o : Dst.Explore.outcome) ->
      Printf.printf "run %04d (seed %d) FAILED:\n" o.Dst.Explore.o_index o.Dst.Explore.o_seed;
      List.iter
        (fun v -> Printf.printf "  %s\n" (Dst.Invariant.pp_violation v))
        o.Dst.Explore.o_violations;
      Printf.printf "  plan: %s\n" (Dst.Fault_plan.pp_compact o.Dst.Explore.o_plan);
      Printf.printf "  decisions: %d recorded\n" (Array.length o.Dst.Explore.o_decisions))
    result.Dst.Explore.failures

(* With --repro-out, the first finding is written out, minimized
   unless --no-shrink. *)
let write_first_finding repro_out no_shrink repro =
  let repro =
    if no_shrink then repro
    else
      match Dst.Replay.shrink repro with
      | Ok minimized ->
          Printf.printf "shrunk: %d -> %d fault(s), %d -> %d decision(s)\n"
            (List.length repro.Dst.Repro.plan)
            (List.length minimized.Dst.Repro.plan)
            (Array.length repro.Dst.Repro.decisions)
            (Array.length minimized.Dst.Repro.decisions);
          minimized
      | Error m ->
          Printf.eprintf "shrink failed (%s); keeping the original repro\n" m;
          repro
  in
  match repro_out with
  | Some file ->
      Dst.Repro.save repro file;
      Printf.printf "repro written to %s\n" file
  | None -> ()

let run_explore_blind jobs progress sc ~seed ~runs faults bound repro_out no_shrink =
  let result =
    Dst.Explore.run ?jobs
      ?on_progress:(progress_for progress ("explore/" ^ sc.Dst.Scenario.name))
      ?faults ~bound sc ~seed ~runs ()
  in
  Printf.printf "explored %s: %d run(s), %d failing\n" result.Dst.Explore.scenario
    result.Dst.Explore.runs
    (List.length result.Dst.Explore.failures);
  print_outcome_failures result;
  match result.Dst.Explore.failures with
  | [] -> 0
  | first :: _ ->
      write_first_finding repro_out no_shrink (Dst.Explore.to_repro result first);
      1

let run_explore_guided jobs progress sc ~seed ~runs faults bound repro_out no_shrink
    corpus_dir batch =
  let corpus =
    match corpus_dir with
    | Some dir when Sys.file_exists dir -> (
        match Dst.Corpus.load ~dir with
        | Ok c ->
            Printf.printf "corpus: loaded %d entries from %s\n" (Dst.Corpus.size c) dir;
            Ok (Some c)
        | Error m ->
            Printf.eprintf "cannot load corpus %s: %s\n" dir m;
            Error 2)
    | _ -> Ok None
  in
  match corpus with
  | Error rc -> rc
  | Ok corpus -> (
      let g =
        Dst.Explore.run_guided ?jobs
          ?on_progress:(progress_for progress ("explore/" ^ sc.Dst.Scenario.name))
          ?faults ~bound ~batch ?corpus sc ~seed ~runs ()
      in
      print_string (Dst.Explore.guided_summary g);
      (match corpus_dir with
      | Some dir ->
          Dst.Corpus.save g.Dst.Explore.g_corpus ~dir;
          Printf.printf "corpus: %d entries saved to %s (%d new)\n"
            (Dst.Corpus.size g.Dst.Explore.g_corpus)
            dir g.Dst.Explore.g_new_entries
      | None -> ());
      match g.Dst.Explore.g_failing with
      | [] -> 0
      | (_, first) :: _ ->
          write_first_finding repro_out no_shrink (Dst.Explore.guided_to_repro g first);
          1)

(* Exploration exits like a fuzzer: 0 when every run upheld the
   invariants, 1 when a finding was made (and, with --repro-out, a
   minimized repro file written). *)
let run_explore jobs progress scenario_name seed runs faults bound repro_out no_shrink
    guided corpus_dir batch =
  match Dst.Scenario.find scenario_name with
  | None ->
      Printf.eprintf "unknown scenario %S (known: %s)\n" scenario_name
        (String.concat ", " (List.map (fun s -> s.Dst.Scenario.name) Dst.Scenario.builtins));
      2
  | Some sc ->
      if guided then
        run_explore_guided jobs progress sc ~seed ~runs faults bound repro_out no_shrink
          corpus_dir batch
      else run_explore_blind jobs progress sc ~seed ~runs faults bound repro_out no_shrink

(* [resilix health SCENARIO]: one run of the scenario under the default
   tie-break policy, judged by the degradation contract.  Exit status
   is nagios-style: 0 when everything is healthy, 1 when components
   are degraded, 2 when a circuit breaker is not closed. *)
let run_health scenario_name seed faults =
  match Dst.Scenario.find scenario_name with
  | None ->
      Printf.eprintf "unknown scenario %S (known: %s)\n" scenario_name
        (String.concat ", " (List.map (fun s -> s.Dst.Scenario.name) Dst.Scenario.builtins));
      3
  | Some sc ->
      let faults = Option.value faults ~default:sc.Dst.Scenario.default_faults in
      let plan = sc.Dst.Scenario.plan ~seed ~faults in
      let report = sc.Dst.Scenario.run ~seed ~policy:Resilix_sim.Engine.Fifo ~plan in
      List.iter
        (fun (b : Dst.Scenario.breaker_row) ->
          Printf.printf "breaker %-16s %-9s trips=%d probes=%d failures=%d\n"
            b.Dst.Scenario.b_component b.Dst.Scenario.b_state b.Dst.Scenario.b_trips
            b.Dst.Scenario.b_probes b.Dst.Scenario.b_failures)
        report.Dst.Scenario.r_breakers;
      List.iter (Printf.printf "degraded %s\n") report.Dst.Scenario.r_degraded;
      let breaker_open =
        List.exists
          (fun (b : Dst.Scenario.breaker_row) -> b.Dst.Scenario.b_state <> "closed")
          report.Dst.Scenario.r_breakers
      in
      if breaker_open then begin
        Printf.printf "health: BREAKER OPEN\n";
        2
      end
      else if report.Dst.Scenario.r_degraded <> [] then begin
        Printf.printf "health: DEGRADED\n";
        1
      end
      else begin
        Printf.printf "health: OK\n";
        0
      end

(* The C10K storm: many concurrent HTTP-ish connections against the
   httpd worker pool while the plan SIGKILLs the Ethernet driver
   mid-storm.  The report (tail latencies, error counts, goodput
   timeline) is virtual-time only: byte-identical for any repeat of
   the same seed.  Exit 1 when a DST invariant is violated. *)
let run_storm requests concurrency workers backlog seed faults bound =
  let sc =
    if requests = 64 && concurrency = 32 && workers = 8 && backlog = 16 then Dst.Scenario.storm
    else Dst.Scenario.storm_sized ~requests ~concurrency ~workers ~backlog ()
  in
  let faults = Option.value faults ~default:sc.Dst.Scenario.default_faults in
  let plan = sc.Dst.Scenario.plan ~seed ~faults in
  let report = sc.Dst.Scenario.run ~seed ~policy:Resilix_sim.Engine.Fifo ~plan in
  Printf.printf "storm %s: %d connection(s), %d worker(s), backlog %d, seed %d\n"
    sc.Dst.Scenario.name concurrency workers backlog seed;
  List.iter print_endline (Dst.Scenario.storm_lines report);
  match Dst.Invariant.check ~bound report with
  | [] ->
      Printf.printf "invariants: OK\n";
      0
  | vs ->
      List.iter (fun v -> Printf.printf "VIOLATION %s\n" (Dst.Invariant.pp_violation v)) vs;
      1

let run_replay file do_shrink out =
  match Dst.Repro.load file with
  | Error m ->
      Printf.eprintf "cannot load %s: %s\n" file m;
      2
  | Ok repro -> (
      match Dst.Replay.run repro with
      | Error m ->
          Printf.eprintf "cannot replay %s: %s\n" file m;
          2
      | Ok outcome ->
          List.iter
            (fun v -> Printf.printf "%s\n" (Dst.Invariant.pp_violation v))
            outcome.Dst.Replay.violations;
          Printf.printf "reproduced: %b\n" outcome.Dst.Replay.reproduced;
          let rc = ref (if outcome.Dst.Replay.reproduced then 0 else 1) in
          if do_shrink && outcome.Dst.Replay.reproduced then begin
            match Dst.Replay.shrink repro with
            | Ok minimized ->
                let dest = Option.value out ~default:(file ^ ".min") in
                Dst.Repro.save minimized dest;
                Printf.printf "shrunk repro written to %s (%d fault(s), %d decision(s))\n" dest
                  (List.length minimized.Dst.Repro.plan)
                  (Array.length minimized.Dst.Repro.decisions)
            | Error m ->
                Printf.eprintf "shrink failed: %s\n" m;
                rc := max !rc 1
          end;
          !rc)

open Cmdliner

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master RNG seed (runs are deterministic).")

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the trial campaign (default: all cores). Output is identical \
           for any value.")

let progress_t =
  Arg.(
    value
    & opt (enum [ ("auto", `Auto); ("always", `Always); ("never", `Never) ]) `Auto
    & info [ "progress" ] ~docv:"WHEN"
        ~doc:
          "Live campaign progress on stderr (completed/total trials, last trial's wall \
           clock, ETA): $(b,auto) shows it only when stderr is a tty, $(b,always) forces \
           it, $(b,never) disables it. Strictly off the stdout path: tables and \
           --metrics-out JSONL are unaffected.")

let size_t default =
  Arg.(value & opt int default & info [ "size-mb" ] ~doc:"Transfer size in MB.")

let intervals_t =
  Arg.(
    value
    & opt (list int) [ 1; 2; 4; 8; 15 ]
    & info [ "intervals" ] ~doc:"Kill intervals in seconds (comma separated).")

let faults_t =
  Arg.(value & opt int 12_500 & info [ "faults" ] ~doc:"Number of faults to inject.")

let shard_size_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "shard-size" ]
        ~doc:"Faults per campaign shard (default 500; layout is independent of --jobs).")

let hw_t =
  Arg.(value & flag & info [ "hw" ] ~doc:"Real-hardware variant: the NIC can wedge.")

let metrics_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write JSONL observability output (metric snapshots, recovery spans, MTTR reports).")

let scenario_t =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SCENARIO" ~doc:"Scenario to explore: $(b,wget) or $(b,dp-inject).")

let runs_t =
  Arg.(value & opt int 16 & info [ "runs" ] ~doc:"Number of seeded runs to explore.")

let health_scenario_t =
  Arg.(
    value
    & pos 0 string "flaky"
    & info [] ~docv:"SCENARIO"
        ~doc:"Scenario to run the health probe against (default: $(b,flaky)).")

let explore_faults_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "faults" ] ~doc:"Fault-plan length per run (default: the scenario's).")

let bound_t =
  Arg.(
    value
    & opt int Dst.Explore.default_bound
    & info [ "bound" ] ~docv:"US"
        ~doc:"Recovery-span completeness bound in microseconds of virtual time.")

let repro_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "repro-out" ] ~docv:"FILE"
        ~doc:"Write the first finding as a JSONL repro file (shrunk unless --no-shrink).")

let no_shrink_t =
  Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip minimization of the finding.")

let guided_t =
  Arg.(
    value
    & flag
    & info [ "guided" ]
        ~doc:
          "Coverage-guided exploration: alternate fresh sampling with mutations of a \
           coverage corpus (new violated-invariant sets and recovery shapes).  Findings \
           are deduplicated by coverage signature.  Output is deterministic for any \
           $(b,--jobs).")

let corpus_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "With --guided: load an existing corpus from $(docv) before exploring and save \
           the grown corpus back after (one replayable JSONL repro file per coverage \
           signature).")

let batch_t =
  Arg.(
    value
    & opt int Dst.Explore.default_batch
    & info [ "batch" ] ~docv:"N"
        ~doc:"With --guided: runs per fresh/mutation batch.")

let storm_requests_t =
  Arg.(
    value
    & opt int 500
    & info [ "requests" ] ~docv:"N" ~doc:"Requests the load generator issues.")

let storm_concurrency_t =
  Arg.(
    value
    & opt int 500
    & info [ "concurrency" ] ~docv:"N" ~doc:"Maximum simultaneous client connections.")

let storm_workers_t =
  Arg.(
    value
    & opt int 32
    & info [ "workers" ] ~docv:"N" ~doc:"httpd worker processes accepting on the shared socket.")

let storm_backlog_t =
  Arg.(
    value
    & opt int 128
    & info [ "backlog" ] ~docv:"N"
        ~doc:"Listener accept backlog; overflowing SYNs are refused with RST.")

let repro_file_t =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"JSONL repro file.")

let shrink_t =
  Arg.(value & flag & info [ "shrink" ] ~doc:"Also minimize the repro after replaying it.")

let out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Where --shrink writes the minimized repro (default: FILE.min).")

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let fig3_cmd =
  cmd "fig3" "Recovery-scheme matrix (Fig. 3)"
    Term.(const run_fig3 $ jobs_t $ progress_t $ seed_t)

let fig7_cmd =
  cmd "fig7" "wget throughput vs Ethernet-driver kill interval (Fig. 7)"
    Term.(const run_fig7 $ jobs_t $ progress_t $ seed_t $ size_t 128 $ intervals_t $ metrics_out_t)

let fig8_cmd =
  cmd "fig8" "dd throughput vs disk-driver kill interval (Fig. 8)"
    Term.(const run_fig8 $ jobs_t $ progress_t $ seed_t $ size_t 1024 $ intervals_t $ metrics_out_t)

let sec72_cmd =
  cmd "sec72" "Fault-injection campaign on the DP8390 driver (Sec. 7.2)"
    Term.(
      const run_sec72 $ jobs_t $ progress_t $ seed_t $ faults_t $ shard_size_t $ hw_t
      $ metrics_out_t)

let fig9_cmd =
  cmd "fig9" "Source-code statistics (Fig. 9)"
    Term.(const run_fig9 $ jobs_t $ progress_t $ const ())

let ablations_cmd =
  cmd "ablations" "Design-choice ablations" Term.(const run_ablations $ jobs_t $ progress_t $ seed_t)

let health_cmd =
  cmd "health"
    "Run a scenario once and report the degradation contract (exit 0 healthy, 1 degraded, 2      breaker open)"
    Term.(const run_health $ health_scenario_t $ seed_t $ explore_faults_t)

let explore_cmd =
  cmd "explore" "Seeded schedule/fault exploration of a scenario (DST)"
    Term.(
      const run_explore $ jobs_t $ progress_t $ scenario_t $ seed_t $ runs_t $ explore_faults_t
      $ bound_t $ repro_out_t $ no_shrink_t $ guided_t $ corpus_t $ batch_t)

let storm_cmd =
  cmd "storm"
    "C10K storm: concurrent HTTP-ish load vs a mid-storm Ethernet-driver kill, with tail-latency \
     and goodput report (exit 1 on invariant violation)"
    Term.(
      const run_storm $ storm_requests_t $ storm_concurrency_t $ storm_workers_t
      $ storm_backlog_t $ seed_t $ explore_faults_t $ bound_t)

let replay_cmd =
  cmd "replay" "Re-execute a JSONL repro file and check it reproduces"
    Term.(const run_replay $ repro_file_t $ shrink_t $ out_t)

let all_cmd =
  cmd "all" "Run every experiment with default parameters"
    Term.(
      const (fun jobs progress seed size7 size8 intervals faults metrics_out ->
          let rc = ref (run_fig3 jobs progress seed) in
          let track n = rc := max !rc n in
          track
            (guard (fun () ->
                 with_obs metrics_out (fun obs ->
                     let r7 =
                       E.Fig7.run ?jobs
                         ?on_progress:(progress_for progress "fig7")
                         ~size:(size7 * mb) ~intervals ~seed ?obs ()
                     in
                     E.Fig7.print r7;
                     let c7 = checked "fig7 fnv digest" (E.Fig7.ok r7) in
                     let r8 =
                       E.Fig8.run ?jobs
                         ?on_progress:(progress_for progress "fig8")
                         ~size:(size8 * mb) ~intervals ~seed ?obs ()
                     in
                     E.Fig8.print r8;
                     max c7 (checked "fig8 digest vs baseline" (E.Fig8.ok r8)))));
          track (run_sec72 jobs progress seed faults None false None);
          track (run_sec72 jobs progress seed faults None true None);
          track (run_fig9 jobs progress ());
          track (run_ablations jobs progress seed);
          !rc)
      $ jobs_t $ progress_t $ seed_t $ size_t 128 $ size_t 512 $ intervals_t $ faults_t
      $ metrics_out_t)

let () =
  let info =
    Cmd.info "resilix" ~version:"1.0.0"
      ~doc:"Failure resilience for device drivers — experiment harness"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            fig3_cmd;
            fig7_cmd;
            fig8_cmd;
            sec72_cmd;
            fig9_cmd;
            ablations_cmd;
            health_cmd;
            storm_cmd;
            explore_cmd;
            replay_cmd;
            all_cmd;
          ]))
